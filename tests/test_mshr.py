"""MSHR file: capacity classes, merging, ack counting, completion."""

import pytest

from repro.caches.mshr import MissKind, MSHRFile


class FakeWaiter:
    def __init__(self, is_store=False):
        self.is_store = is_store


class TestCapacity:
    def test_app_limit(self):
        f = MSHRFile(app_entries=2, protocol_reserved=1)
        assert f.allocate(0x000, MissKind.READ) is not None
        assert f.allocate(0x080, MissKind.READ) is not None
        assert f.allocate(0x100, MissKind.READ) is None  # app class full

    def test_store_class_gets_extra_entry(self):
        f = MSHRFile(app_entries=1, protocol_reserved=0)
        assert f.allocate(0x000, MissKind.READ) is not None
        assert f.allocate(0x080, MissKind.WRITE, store=True) is not None
        assert f.allocate(0x100, MissKind.WRITE, store=True) is None

    def test_protocol_reserved_entry(self):
        f = MSHRFile(app_entries=1, protocol_reserved=1)
        assert f.allocate(0x000, MissKind.READ) is not None
        assert f.allocate(0x080, MissKind.WRITE, store=True) is not None
        # App classes exhausted; the protocol still gets its slot.
        assert f.allocate(0x100, MissKind.READ, protocol=True) is not None

    def test_free_restores_class(self):
        f = MSHRFile(app_entries=1)
        f.allocate(0x000, MissKind.READ)
        assert f.allocate(0x080, MissKind.READ) is None
        f.free(0x000)
        assert f.allocate(0x080, MissKind.READ) is not None

    def test_double_allocate_same_line_raises(self):
        f = MSHRFile()
        f.allocate(0x000, MissKind.READ)
        with pytest.raises(ValueError):
            f.allocate(0x000, MissKind.WRITE)

    def test_protocol_peak_tracking(self):
        f = MSHRFile(app_entries=4, protocol_reserved=1)
        f.allocate(0x000, MissKind.READ, protocol=True)
        f.allocate(0x080, MissKind.READ, protocol=True)
        f.free(0x000)
        assert f.peak_proto == 2


class TestCompletion:
    def test_complete_requires_data_and_acks(self):
        f = MSHRFile()
        e = f.allocate(0x000, MissKind.WRITE)
        assert not e.complete
        f.data_reply(0x000, version=3, writable=True, acks=2)
        assert not e.complete
        f.inval_ack(0x000)
        f.inval_ack(0x000)
        assert e.complete

    def test_acks_may_arrive_before_data(self):
        f = MSHRFile()
        e = f.allocate(0x000, MissKind.WRITE)
        f.inval_ack(0x000)
        assert e.pending_acks == -1
        f.data_reply(0x000, version=1, writable=True, acks=1)
        assert e.complete

    def test_inval_ack_unknown_line_returns_none(self):
        assert MSHRFile().inval_ack(0x123) is None

    def test_merge_write_into_read_sets_upgrade_pending(self):
        f = MSHRFile()
        e = f.allocate(0x000, MissKind.READ)
        f.merge(e, FakeWaiter(is_store=True), wants_write=True)
        assert e.upgrade_pending
        # A writable reply satisfies the stores, too.
        f.data_reply(0x000, version=0, writable=True, acks=0)
        assert e.complete

    def test_merge_read_into_write_no_upgrade(self):
        f = MSHRFile()
        e = f.allocate(0x000, MissKind.WRITE)
        f.merge(e, FakeWaiter(), wants_write=False)
        assert not e.upgrade_pending

    def test_free_returns_waiters(self):
        f = MSHRFile()
        e = f.allocate(0x000, MissKind.READ)
        w1, w2 = FakeWaiter(), FakeWaiter()
        f.merge(e, w1, False)
        f.merge(e, w2, False)
        assert f.free(0x000) == [w1, w2]

    def test_kind_wants_write(self):
        assert MissKind.WRITE.wants_write
        assert MissKind.PREFETCH_EX.wants_write
        assert not MissKind.READ.wants_write
        assert not MissKind.PREFETCH.wants_write

    def test_in_flight_lines(self):
        f = MSHRFile()
        f.allocate(0x000, MissKind.READ)
        f.allocate(0x080, MissKind.WRITE)
        assert sorted(f.in_flight_line_addrs()) == [0x000, 0x080]
