"""The OoO SMT core: fetch/rename/issue/commit behaviour, speculation,
SMT sharing, and the deadlock-avoidance reservations — driven through
full machines with controlled kernels."""

import pytest

from repro.apps.program import AWAIT, KernelBuilder, ThreadProgram
from repro.isa.uop import UopKind
from tests.conftest import small_machine


def run_kernel(bodies, model="intperfect", n_nodes=1, ways=1, max_cycles=400_000,
               **overrides):
    """Install one kernel per (node, way) and run to completion."""
    m = small_machine(model, n_nodes=n_nodes, ways=ways, **overrides)
    sources = []
    i = 0
    for node in range(n_nodes):
        per_node = []
        for w in range(ways):
            body = bodies[i % len(bodies)]
            k = KernelBuilder(w, 0x400000 + i * 0x40000)
            per_node.append(ThreadProgram(body, k, wheel=m.wheel))
            i += 1
        sources.append(per_node)
    m.install_cores(sources)
    m.run(max_cycles)
    assert m.all_done(), m._deadlock_report()
    m.quiesce()
    m.finish()
    m.final_checks()
    return m, m.collect_stats()


class TestSingleThread:
    def test_dependent_chain_commits_in_order(self):
        def body(k):
            a = k.alu()
            for _ in range(50):
                a = k.alu(a)
            yield

        m, st = run_kernel([body])
        t = st.app_threads()[0]
        assert t.committed == 51
        # A fully serial chain: at most one ALU result per cycle.
        assert st.cycles >= 51

    def test_independent_ops_exploit_width(self):
        def body(k):
            for _ in range(40):
                k.alu()
                k.alu()
                k.alu()
                k.alu()
                yield

        m, st = run_kernel([body])
        t = st.app_threads()[0]
        # 160 independent ALUs: IPC must exceed 1.
        assert t.committed / (st.cycles - 0) > 0.5

    def test_loop_branches_mostly_predicted(self):
        def body(k):
            top = k.here()
            for i in range(200):
                k.set_pc(top)
                k.alu()
                k.branch(i < 199, top)
                yield

        m, st = run_kernel([body])
        t = st.app_threads()[0]
        assert t.branches == 200
        assert t.mispredicts < 20

    def test_mispredict_squashes_wrong_path(self):
        def body(k):
            # Alternating branch at one PC: hard to predict.
            top = k.here()
            for i in range(80):
                k.set_pc(top)
                k.alu()
                k.branch(i % 2 == 0, top if i % 2 else top + 400)
                yield

        m, st = run_kernel([body])
        t = st.app_threads()[0]
        assert t.mispredicts > 10
        assert t.squashed > 0  # wrong-path µops were injected and killed

    def test_store_load_forwarding_value(self):
        seen = []

        def body(k):
            k.store(0x1000, value=42)
            k.spin_load(0x1000)
            v = yield AWAIT
            seen.append(v)

        run_kernel([body])
        assert seen == [42]

    def test_fp_divide_is_slow(self):
        def chain(op):
            def body(k):
                a = k.falu()
                for _ in range(10):
                    a = op(k, a)
                yield
            return body

        _, fast = run_kernel([chain(lambda k, a: k.falu(a))])
        _, slow = run_kernel([chain(lambda k, a: k.fdiv(a))])
        assert slow.cycles > fast.cycles + 100

    def test_int_divide_nonpipelined(self):
        def body(k):
            for _ in range(8):
                k.mul()
            yield

        m, st = run_kernel([body])
        assert st.app_threads()[0].committed == 8


class TestMemoryOrdering:
    def test_per_thread_memory_program_order(self):
        """A load after a store to the same word sees the new value
        even through the cache path (same-thread forwarding)."""
        values = []

        def body(k):
            for i in range(5):
                k.store(0x2000 + 128 * i, value=i)
            k.spin_load(0x2000 + 128 * 4)
            v = yield AWAIT
            values.append(v)

        run_kernel([body])
        assert values == [4]

    def test_atomic_gates_at_rob_head(self):
        order = []

        def body(k):
            k.atomic(0x3000, "fai", 1)
            v = yield AWAIT
            order.append(v)
            k.atomic(0x3000, "fai", 1)
            v = yield AWAIT
            order.append(v)

        run_kernel([body])
        assert order == [0, 1]


class TestSMT:
    def test_two_threads_share_pipeline(self):
        def body(k):
            for _ in range(100):
                k.alu()
                k.alu()
                yield

        m, st = run_kernel([body, body], ways=2)
        threads = st.app_threads()
        assert len(threads) == 2
        assert all(t.committed == 200 for t in threads)

    def test_two_threads_beat_double_serial_time(self):
        def body(k):
            for _ in range(150):
                a = k.load(0x4000)
                k.alu(a)
                yield

        _, solo = run_kernel([body], ways=1)
        _, duo = run_kernel([body, body], ways=2)
        assert duo.cycles < 2 * solo.cycles

    def test_four_way(self):
        def body(k):
            for _ in range(60):
                k.alu()
                yield

        m, st = run_kernel([body] * 4, ways=4)
        assert all(t.committed == 60 for t in st.app_threads())

    def test_memory_stall_attribution(self):
        def stall_body(k):
            for i in range(30):
                k.load(0x100000 + i * 4096)  # page-new cold misses
                yield

        m, st = run_kernel([stall_body])
        t = st.app_threads()[0]
        assert t.memory_stall_cycles > st.cycles * 0.3


class TestCallReturn:
    def test_call_return_ras(self):
        def body(k):
            fn = 0x500000
            for _ in range(20):
                ret_pc = k.call(fn)
                k.alu()
                k.ret(ret_pc)
                yield

        m, st = run_kernel([body])
        t = st.app_threads()[0]
        assert t.branches == 40  # 20 calls + 20 returns
        # Returns predicted through the RAS after warm-up.
        assert t.mispredicts <= 4


class TestICache:
    def test_large_code_footprint_misses(self):
        def body(k):
            # March the PC across many I-cache lines.
            for i in range(300):
                k.set_pc(0x400000 + i * 64)
                k.alu()
                if i % 16 == 0:
                    yield
            yield

        m, st = run_kernel([body])
        assert m.nodes[0].stats.l1i.misses > 100
