"""Functional coverage of every coherence handler state transition,
run standalone against a directory image (no pipeline, no network)."""

import pytest

from repro.common.errors import ProtocolError
from repro.network.messages import MsgType
from repro.protocol import directory as d
from repro.protocol.directory import DirectoryLayout
from repro.protocol.handlers import (
    boot_registers,
    build_handler_table,
    header_acks,
    header_peer,
    header_requester,
    header_type,
    make_header,
)
from repro.protocol.isa import ADDR, HDR, POp
from repro.protocol.semantics import FunctionalRunner

LAYOUT = DirectoryLayout(local_memory_bytes=1 << 22, line_bytes=128, entry_bytes=4)
TABLE = build_handler_table()
LINE = 0x2000  # homed at node 0


class HandlerHarness:
    def __init__(self, node_id=0, entry=None, line=LINE):
        self.pmem = {}
        self.line = line
        if entry is not None:
            self.pmem[LAYOUT.dir_entry_addr(line)] = entry
        self.node_id = node_id
        self.sent = []
        self.ops = []

    def run(self, handler_name, mtype, src, requester, **hdr_kw):
        regs = boot_registers(LAYOUT, self.node_id)
        regs[ADDR] = self.line
        regs[HDR] = make_header(mtype, peer=src, requester=requester, **hdr_kw)
        pending_hdr = [None]

        def on_uncached(instr, value):
            if instr.op is POp.SENDH:
                pending_hdr[0] = value
            elif instr.op is POp.SENDA:
                self.sent.append((pending_hdr[0], value))
            elif instr.op in (POp.SWITCH, POp.LDCTXT):
                pass
            else:
                self.ops.append((instr.op, instr.imm))

        runner = FunctionalRunner(
            regs, lambda a: self.pmem.get(a, 0), self.pmem.__setitem__, on_uncached
        )
        runner.run(TABLE[handler_name])
        return runner

    @property
    def entry(self):
        return self.pmem.get(LAYOUT.dir_entry_addr(self.line), 0)

    def sent_types(self):
        return [header_type(h) for h, a in self.sent]

    def sent_msgs(self):
        return [
            (header_type(h), header_peer(h), header_requester(h), header_acks(h))
            for h, a in self.sent
        ]


class TestGet:
    def test_unowned_gives_eager_exclusive(self):
        h = HandlerHarness()
        h.run("h_get", MsgType.GET, src=3, requester=3)
        assert d.state_of(h.entry) == d.EXCLUSIVE
        assert d.owner_of(h.entry) == 3
        assert h.sent_msgs() == [(MsgType.DATA_EXCL.value, 3, 3, 0)]

    def test_shared_adds_sharer(self):
        h = HandlerHarness(entry=d.encode(d.SHARED, vector=0b10))
        h.run("h_get", MsgType.GET, src=4, requester=4)
        assert d.state_of(h.entry) == d.SHARED
        assert d.sharers_of(h.entry) == [1, 4]
        assert h.sent_types() == [MsgType.DATA_SHARED.value]

    def test_exclusive_forwards_intervention(self):
        h = HandlerHarness(entry=d.encode(d.EXCLUSIVE, owner=2))
        h.run("h_get", MsgType.GET, src=5, requester=5)
        assert d.state_of(h.entry) == d.BUSY_SHARED
        assert d.owner_of(h.entry) == 2
        assert d.waiter_of(h.entry) == 5
        assert h.sent_msgs() == [(MsgType.INT_SHARED.value, 2, 5, 0)]

    def test_owner_rerequest_nacked(self):
        # The recorded owner can only miss while still recorded if its
        # eviction PUT is in flight: NACK until the PUT lands.
        h = HandlerHarness(entry=d.encode(d.EXCLUSIVE, owner=5))
        h.run("h_get", MsgType.GET, src=5, requester=5)
        assert d.state_of(h.entry) == d.EXCLUSIVE
        assert h.sent_msgs() == [(MsgType.NACK.value, 5, 5, 0)]

    def test_xfer_debt_nacks(self):
        h = HandlerHarness(entry=1 << d.XFER_DEBT_SHIFT)
        h.run("h_get", MsgType.GET, src=3, requester=3)
        assert h.sent_msgs() == [(MsgType.NACK.value, 3, 3, 0)]
        assert d.xfer_debt(h.entry)  # debt untouched

    @pytest.mark.parametrize("state", [d.BUSY_SHARED, d.BUSY_EXCLUSIVE])
    def test_busy_nacks(self, state):
        h = HandlerHarness(entry=d.encode(state, owner=1, waiter=2))
        h.run("h_get", MsgType.GET, src=6, requester=6)
        assert h.sent_msgs() == [(MsgType.NACK.value, 6, 6, 0)]
        assert d.state_of(h.entry) == state  # unchanged


class TestGetx:
    def test_unowned(self):
        h = HandlerHarness()
        h.run("h_getx", MsgType.GETX, src=1, requester=1)
        assert d.state_of(h.entry) == d.EXCLUSIVE
        assert d.owner_of(h.entry) == 1

    def test_shared_invalidates_others(self):
        h = HandlerHarness(
            entry=d.encode(d.SHARED, vector=(1 << 1) | (1 << 2) | (1 << 5))
        )
        h.run("h_getx", MsgType.GETX, src=5, requester=5)
        msgs = h.sent_msgs()
        assert msgs[0] == (MsgType.DATA_EXCL.value, 5, 5, 2)  # acks=2
        invals = sorted(m[1] for m in msgs[1:])
        assert invals == [1, 2]
        assert all(m[0] == MsgType.INVAL.value for m in msgs[1:])
        assert d.owner_of(h.entry) == 5

    def test_shared_sole_sharer_no_invals(self):
        h = HandlerHarness(entry=d.encode(d.SHARED, vector=1 << 4))
        h.run("h_getx", MsgType.GETX, src=4, requester=4)
        assert h.sent_msgs() == [(MsgType.DATA_EXCL.value, 4, 4, 0)]

    def test_exclusive_goes_busy(self):
        h = HandlerHarness(entry=d.encode(d.EXCLUSIVE, owner=7))
        h.run("h_getx", MsgType.GETX, src=2, requester=2)
        assert d.state_of(h.entry) == d.BUSY_EXCLUSIVE
        assert h.sent_msgs() == [(MsgType.INT_EXCL.value, 7, 2, 0)]

    def test_busy_nacks(self):
        h = HandlerHarness(entry=d.encode(d.BUSY_EXCLUSIVE, owner=1, waiter=3))
        h.run("h_getx", MsgType.GETX, src=6, requester=6)
        assert h.sent_types() == [MsgType.NACK.value]

    def test_owner_rerequest_nacked(self):
        h = HandlerHarness(entry=d.encode(d.EXCLUSIVE, owner=2))
        h.run("h_getx", MsgType.GETX, src=2, requester=2)
        assert d.state_of(h.entry) == d.EXCLUSIVE
        assert h.sent_msgs() == [(MsgType.NACK.value, 2, 2, 0)]

    def test_xfer_debt_nacks(self):
        h = HandlerHarness(entry=1 << d.XFER_DEBT_SHIFT)
        h.run("h_getx", MsgType.GETX, src=3, requester=3)
        assert h.sent_msgs() == [(MsgType.NACK.value, 3, 3, 0)]
        assert d.xfer_debt(h.entry)


class TestUpgrade:
    def test_granted_with_acks(self):
        h = HandlerHarness(entry=d.encode(d.SHARED, vector=0b111))
        h.run("h_upgrade", MsgType.UPGRADE, src=0, requester=0)
        msgs = h.sent_msgs()
        assert msgs[0] == (MsgType.UPGRADE_ACK.value, 0, 0, 2)
        assert sorted(m[1] for m in msgs[1:]) == [1, 2]
        assert d.state_of(h.entry) == d.EXCLUSIVE
        assert d.owner_of(h.entry) == 0

    def test_requester_not_sharer_nacked(self):
        h = HandlerHarness(entry=d.encode(d.SHARED, vector=0b010))
        h.run("h_upgrade", MsgType.UPGRADE, src=3, requester=3)
        assert h.sent_types() == [MsgType.NACK_UPGRADE.value]
        assert d.state_of(h.entry) == d.SHARED

    @pytest.mark.parametrize(
        "entry",
        [
            d.encode(d.UNOWNED),
            d.encode(d.EXCLUSIVE, owner=9),
            d.encode(d.BUSY_SHARED, owner=1, waiter=2),
        ],
    )
    def test_wrong_state_nacked(self, entry):
        h = HandlerHarness(entry=entry)
        h.run("h_upgrade", MsgType.UPGRADE, src=3, requester=3)
        assert h.sent_types() == [MsgType.NACK_UPGRADE.value]


class TestWritebacks:
    def test_put_stable(self):
        h = HandlerHarness(entry=d.encode(d.EXCLUSIVE, owner=4))
        h.run("h_put", MsgType.PUT, src=4, requester=4)
        assert d.state_of(h.entry) == d.UNOWNED
        assert h.sent_msgs() == [(MsgType.WB_ACK.value, 4, 4, 0)]
        assert (POp.MEMWR, 0) in h.ops

    def test_put_mid_transaction_absorbed(self):
        # Owner writes back while an intervention is in flight: memory
        # is updated but the entry stays BUSY and the WB_ACK is
        # withheld — h_int_nack resolves both once the probe misses.
        h = HandlerHarness(entry=d.encode(d.BUSY_EXCLUSIVE, owner=4, waiter=9))
        h.run("h_put", MsgType.PUT, src=4, requester=4)
        assert h.sent == []
        assert (POp.MEMWR, 0) in h.ops
        assert d.state_of(h.entry) == d.BUSY_EXCLUSIVE
        assert d.waiter_of(h.entry) == 9

    def test_put_from_waiter_records_xfer_debt(self):
        # The freshly granted owner's PUT overtook the old owner's
        # XFER revision: resolve the transaction, ack the writeback,
        # and leave the debt bit so the stale XFER is consumed rather
        # than interpreted.
        h = HandlerHarness(entry=d.encode(d.BUSY_EXCLUSIVE, owner=4, waiter=9))
        h.run("h_put", MsgType.PUT, src=9, requester=9)
        assert h.sent_msgs() == [(MsgType.WB_ACK.value, 9, 9, 0)]
        assert (POp.MEMWR, 0) in h.ops
        assert d.state_of(h.entry) == d.UNOWNED
        assert d.xfer_debt(h.entry)

    def test_put_from_non_owner_traps(self):
        h = HandlerHarness(entry=d.encode(d.EXCLUSIVE, owner=4))
        with pytest.raises(ProtocolError):
            h.run("h_put", MsgType.PUT, src=6, requester=6)

    def test_swb_downgrade_revision(self):
        h = HandlerHarness(entry=d.encode(d.BUSY_SHARED, owner=2, waiter=5))
        h.run("h_swb", MsgType.SWB, src=2, requester=5)
        assert d.state_of(h.entry) == d.SHARED
        assert sorted(d.sharers_of(h.entry)) == [2, 5]
        assert (POp.MEMWR, 0) in h.ops

    def test_swb_wrong_state_traps(self):
        h = HandlerHarness(entry=d.encode(d.EXCLUSIVE, owner=2))
        with pytest.raises(ProtocolError):
            h.run("h_swb", MsgType.SWB, src=2, requester=5)

    def test_xfer_transfers_ownership(self):
        h = HandlerHarness(entry=d.encode(d.BUSY_EXCLUSIVE, owner=2, waiter=5))
        h.run("h_xfer", MsgType.XFER, src=2, requester=5)
        assert d.state_of(h.entry) == d.EXCLUSIVE
        assert d.owner_of(h.entry) == 5
        assert (POp.MEMWR, 0) not in h.ops  # dirty data went to requester

    def test_xfer_consumes_recorded_debt(self):
        h = HandlerHarness(entry=1 << d.XFER_DEBT_SHIFT)
        h.run("h_xfer", MsgType.XFER, src=2, requester=5)
        assert h.entry == 0  # plain UNOWNED again
        assert h.sent == []

    def test_xfer_stale_dropped(self):
        # Transaction already resolved and no debt recorded (e.g. the
        # entry moved on): the revision is stale and must not touch it.
        entry = d.encode(d.EXCLUSIVE, owner=7)
        h = HandlerHarness(entry=entry)
        h.run("h_xfer", MsgType.XFER, src=2, requester=5)
        assert h.entry == entry
        assert h.sent == []

    def test_int_nack_resolves_from_memory(self):
        # The probe missed because the owner's PUT (already absorbed)
        # emptied it: grant the waiter from memory and only now ack
        # the old owner's writeback.
        h = HandlerHarness(entry=d.encode(d.BUSY_EXCLUSIVE, owner=2, waiter=5))
        h.run("h_int_nack", MsgType.INT_NACK, src=2, requester=5)
        msgs = h.sent_msgs()
        assert msgs[0] == (MsgType.DATA_EXCL.value, 5, 5, 0)
        assert msgs[1] == (MsgType.WB_ACK.value, 2, 2, 0)
        assert d.state_of(h.entry) == d.EXCLUSIVE
        assert d.owner_of(h.entry) == 5

    def test_int_nack_wrong_state_traps(self):
        h = HandlerHarness(entry=d.encode(d.EXCLUSIVE, owner=2))
        with pytest.raises(ProtocolError):
            h.run("h_int_nack", MsgType.INT_NACK, src=2, requester=5)


class TestProbeSide:
    @pytest.mark.parametrize(
        "name,kind",
        [("h_int_shared", 1), ("h_int_excl", 0), ("h_inval", 0)],
    )
    def test_interventions_probe_and_finish(self, name, kind):
        h = HandlerHarness()
        h.run(name, MsgType.INT_SHARED, src=0, requester=5)
        assert h.ops == [(POp.PROBE, kind)]
        assert h.sent == []

    def test_probe_sh_done_hit(self):
        h = HandlerHarness(node_id=2)
        h.run(
            "h_probe_sh_done", MsgType.L2_PROBE_REPLY, src=0, requester=5,
            found=True, dirty=True,
        )
        msgs = h.sent_msgs()
        assert msgs[0][:3] == (MsgType.DATA_SHARED.value, 5, 5)
        assert msgs[1][:3] == (MsgType.SWB.value, 0, 5)

    def test_probe_sh_done_miss_nacks_home(self):
        h = HandlerHarness(node_id=2)
        h.run(
            "h_probe_sh_done", MsgType.L2_PROBE_REPLY, src=0, requester=5,
            found=False,
        )
        assert h.sent_msgs() == [(MsgType.INT_NACK.value, 0, 5, 0)]

    def test_probe_ex_done_hit(self):
        h = HandlerHarness(node_id=2)
        h.run(
            "h_probe_ex_done", MsgType.L2_PROBE_REPLY, src=0, requester=7,
            found=True,
        )
        msgs = h.sent_msgs()
        assert msgs[0][:3] == (MsgType.DATA_EXCL.value, 7, 7)
        assert msgs[1][:3] == (MsgType.XFER.value, 0, 7)

    def test_inval_done_acks_requester(self):
        h = HandlerHarness(node_id=2)
        h.run(
            "h_inval_done", MsgType.L2_PROBE_REPLY, src=0, requester=9,
            found=True,
        )
        assert h.sent_msgs() == [(MsgType.INV_ACK.value, 9, 9, 0)]


class TestRequesterSide:
    @pytest.mark.parametrize(
        "name,op",
        [
            ("h_reply_data_sh", POp.COMPLETE),
            ("h_reply_data_ex", POp.COMPLETE),
            ("h_reply_upgrade_ack", POp.COMPLETE),
            ("h_reply_inv_ack", POp.COMPLETE),
            ("h_reply_wb_ack", POp.COMPLETE),
            ("h_reply_nack", POp.RESEND),
            ("h_reply_nack_upgrade", POp.RESEND),
        ],
    )
    def test_reply_handlers(self, name, op):
        h = HandlerHarness()
        h.run(name, MsgType.DATA_SHARED, src=1, requester=0)
        assert [o for o, _ in h.ops] == [op]

    @pytest.mark.parametrize(
        "name,mtype",
        [
            ("pi_fwd_get", MsgType.GET),
            ("pi_fwd_getx", MsgType.GETX),
            ("pi_fwd_upgrade", MsgType.UPGRADE),
        ],
    )
    def test_pi_forward_targets_home(self, name, mtype):
        h = HandlerHarness(node_id=3)
        h.line = (5 << 22) | 0x700  # homed at node 5
        h.run(name, MsgType.GET, src=3, requester=3)
        assert h.sent_msgs() == [(mtype.value, 5, 3, 0)]
