"""ThreadProgram / KernelBuilder coroutine mechanics."""

import pytest

from repro.apps.program import AWAIT, KernelBuilder, ThreadProgram
from repro.common.events import EventWheel
from repro.isa.uop import FP_BASE, UopKind


def make(body):
    wheel = EventWheel()
    k = KernelBuilder(0, 0x1000)
    return ThreadProgram(body, k, wheel=wheel), wheel


class TestKernelBuilder:
    def test_pcs_advance(self):
        k = KernelBuilder(0, 0x1000)
        k.alu()
        k.alu()
        assert [u.pc for u in k.buffer] == [0x1000, 0x1004]

    def test_register_rotation_avoids_reuse(self):
        k = KernelBuilder(0, 0)
        dests = [k.alu() for _ in range(8)]
        assert len(set(dests)) == 8

    def test_fp_registers_in_fp_space(self):
        k = KernelBuilder(0, 0)
        r = k.falu()
        assert r >= FP_BASE

    def test_taken_branch_moves_pc(self):
        k = KernelBuilder(0, 0x1000)
        k.alu()
        k.branch(True, 0x1000)
        assert k.pc == 0x1000

    def test_untaken_branch_falls_through(self):
        k = KernelBuilder(0, 0x1000)
        k.branch(False, 0x2000)
        assert k.pc == 0x1004

    def test_call_ret(self):
        k = KernelBuilder(0, 0x1000)
        ret = k.call(0x5000)
        assert k.pc == 0x5000
        k.ret(ret)
        assert k.pc == ret

    def test_load_store_kinds(self):
        k = KernelBuilder(0, 0)
        k.load(0x80)
        k.store(0x80, value=3)
        k.prefetch(0x100, exclusive=True)
        kinds = [u.kind for u in k.buffer]
        assert kinds == [UopKind.LOAD, UopKind.STORE, UopKind.PREFETCH]
        assert k.buffer[2].exclusive


class TestThreadProgram:
    def test_pulls_until_yield(self):
        def body(k):
            k.alu()
            k.alu()
            yield
            k.alu()
            yield

        p, _ = make(body)
        uops = []
        while not p.done:
            u = p.next_uop()
            if u is None:
                break
            uops.append(u)
        assert len(uops) == 3
        assert p.done

    def test_await_blocks_until_value(self):
        got = []

        def body(k):
            k.atomic(0x100, "tas")
            v = yield AWAIT
            got.append(v)
            k.alu()
            yield

        p, _ = make(body)
        atomic = p.next_uop()
        assert atomic.kind is UopKind.ATOMIC
        assert p.next_uop() is None  # blocked
        assert not p.peek_available()
        atomic.on_value(0)
        # The coroutine resumes on the next pull.
        assert p.next_uop().kind is UopKind.ALU
        assert got == [0]

    def test_sleep_blocks_until_wheel(self):
        def body(k):
            k.alu()
            yield
            yield ("sleep", 10)
            k.alu()
            yield

        p, wheel = make(body)
        assert p.next_uop() is not None
        assert p.next_uop() is None  # sleeping
        wheel.tick(9)
        assert not p.peek_available()
        wheel.tick(10)
        assert p.next_uop() is not None

    def test_push_back_restores_order(self):
        def body(k):
            k.alu()
            k.mul()
            yield

        p, _ = make(body)
        first = p.next_uop()
        p.push_back(first)
        assert p.next_uop() is first

    def test_done_only_after_drain(self):
        def body(k):
            k.alu()
            yield

        p, _ = make(body)
        assert not p.done
        p.next_uop()
        assert not p.done or p.done  # draining...
        assert p.next_uop() is None
        assert p.done
