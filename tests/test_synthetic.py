"""Synthetic kernels: targeted traffic patterns with exact outcomes."""

import pytest

from repro.apps import synthetic
from repro.sim.driver import run_machine
from tests.conftest import small_machine

pytestmark = pytest.mark.slow


def run(maker, model="base", n_nodes=2, ways=1, **kw):
    m = small_machine(model, n_nodes=n_nodes, ways=ways)
    sources = maker(m, **kw)
    st = run_machine(m, sources, max_cycles=2_000_000)
    return m, st


class TestStream:
    def test_private_stream_mostly_local(self):
        m, st = run(synthetic.stream, n_nodes=2, words=128)
        # Only the closing barrier crosses nodes.
        assert all(n.remote_requests_in < 10 for n in st.nodes)

    def test_stream_second_round_hits(self):
        m, st = run(synthetic.stream, n_nodes=1, words=64, rounds=2)
        node = st.nodes[0]
        assert node.l1d.app_hits > node.l1d.app_misses


class TestPingPong:
    def test_line_migrates_between_writers(self):
        m, st = run(synthetic.pingpong, n_nodes=2, rounds=10)
        # Alternating writers: ownership transfers via interventions
        # or writeback races every round.
        transfers = sum(
            n.protocol.handlers_by_type.get(h, 0)
            for n in st.nodes
            for h in ("h_int_shared", "h_int_excl", "h_upgrade")
        )
        assert transfers >= 10
        assert m.words  # final flag value present

    def test_final_count_exact(self):
        m, st = run(synthetic.pingpong, n_nodes=2, rounds=8)
        assert max(m.words.values()) >= 16


class TestSharing:
    def test_readers_invalidated_each_round(self):
        m, st = run(synthetic.sharing, n_nodes=4, rounds=5, reader_words=8)
        invals = sum(
            n.protocol.handlers_by_type.get("h_inval", 0) for n in st.nodes
        )
        assert invals > 0


class TestLockstep:
    def test_barrier_only(self):
        m, st = run(synthetic.lockstep, n_nodes=2, ways=2, rounds=5)
        assert all(t.done for t in st.app_threads())


class TestContendedLock:
    @pytest.mark.parametrize("model", ["base", "smtp"])
    def test_no_lost_increments(self, model):
        m, st = run(synthetic.contended_lock, model=model, n_nodes=2,
                    ways=2, increments=3)
        counter_addr = max(
            a for a in m.words if m.words[a] == 3 * 4 or True
        )
        assert 3 * 4 in m.words.values()
