"""SDRAM timing, directory caches, dispatch resolution, PP engine."""

import pytest

from repro.common.params import PERFECT, MachineParams, ProcessorParams
from repro.common.stats import NodeStats
from repro.memctrl.dircache import (
    DirectMappedCache,
    PerfectCache,
    make_directory_cache,
)
from repro.memctrl.dispatch import handler_name_for, incoming_header
from repro.memctrl.sdram import SDRAM
from repro.network.messages import Message, MsgType
from repro.protocol.handlers import header_requester, header_type
from tests.conftest import Completion, small_machine


def mp():
    return MachineParams(
        model="base", n_nodes=4, proc=ProcessorParams(),
        protocol_engine="pp", dir_cache=1024,
    )


class TestSDRAM:
    def test_access_latency(self):
        s = SDRAM(mp(), NodeStats())
        assert s.access(100) == 100 + s.access_cycles

    def test_bandwidth_occupancy_serializes(self):
        s = SDRAM(mp(), NodeStats())
        t1 = s.access(0)
        t2 = s.access(0)
        assert t2 == t1 + s.occupancy_cycles

    def test_idle_gap_no_queueing(self):
        s = SDRAM(mp(), NodeStats())
        s.access(0)
        far = 10 * s.occupancy_cycles
        assert s.access(far) == far + s.access_cycles

    def test_queue_depth_estimate(self):
        s = SDRAM(mp(), NodeStats())
        for _ in range(4):
            s.access(0)
        assert s.queue_depth(0) >= 3

    def test_stats_counted(self):
        st = NodeStats()
        s = SDRAM(mp(), st)
        s.access(0)
        s.access(0)
        assert st.sdram_accesses == 2
        assert st.sdram_busy_cycles == 2 * s.occupancy_cycles


class TestDirCache:
    def test_direct_mapped_conflicts(self):
        c = DirectMappedCache(size_bytes=128, line_bytes=64)  # 2 lines
        assert not c.access(0x000)
        assert c.access(0x000)
        assert not c.access(0x080)  # maps to line 0: evicts
        assert not c.access(0x000)

    def test_perfect_always_hits(self):
        c = PerfectCache()
        assert c.access(0xDEAD)
        assert c.misses == 0

    def test_factory(self):
        assert isinstance(make_directory_cache(PERFECT), PerfectCache)
        assert isinstance(make_directory_cache(4096), DirectMappedCache)
        with pytest.raises(ValueError):
            make_directory_cache(None)


class TestDispatchResolution:
    def test_request_at_home(self):
        msg = Message(MsgType.GET, 0x100, src=2, dest=1, requester=2)
        assert handler_name_for(msg, node_id=1) == "h_get"

    def test_local_miss_remote_home_forwards(self):
        msg = Message(MsgType.GETX, 0x100, src=1, dest=3, requester=1)
        assert handler_name_for(msg, node_id=1) == "pi_fwd_getx"

    def test_reply_resolution(self):
        msg = Message(MsgType.DATA_EXCL, 0x100, src=3, dest=1, requester=1)
        assert handler_name_for(msg, node_id=1) == "h_reply_data_ex"

    def test_probe_reply_requires_kind(self):
        msg = Message(MsgType.L2_PROBE_REPLY, 0x100, src=0, dest=1)
        with pytest.raises(ValueError):
            handler_name_for(msg, 1)

    def test_incoming_header_fields(self):
        msg = Message(MsgType.GET, 0x100, src=2, dest=1, requester=5)
        hdr = incoming_header(msg)
        assert header_type(hdr) == MsgType.GET.value
        assert header_requester(hdr) == 5


class TestPPEngine:
    def test_handler_execution_advances_directory(self):
        m = small_machine("base", n_nodes=1)
        done = Completion(m)
        m.nodes[0].hierarchy.load(0x1000, False, done.cb("ld"))
        m.quiesce()
        assert m.nodes[0].stats.protocol.handlers == 1
        assert m.nodes[0].stats.protocol.instructions > 10

    def test_engine_busy_serializes_handlers(self):
        m = small_machine("base", n_nodes=1)
        done = Completion(m)
        h = m.nodes[0].hierarchy
        h.load(0x1000, False, done.cb("a"))
        h.load(0x9000, False, done.cb("b"))
        m.quiesce()
        assert m.nodes[0].stats.protocol.handlers == 2
        assert m.nodes[0].stats.protocol.busy_cycles > 0

    def test_dircache_miss_stalls_show_up(self):
        m = small_machine("base", n_nodes=1)
        done = Completion(m)
        m.nodes[0].hierarchy.load(0x1000, False, done.cb("a"))
        m.quiesce()
        p = m.nodes[0].stats.protocol
        assert p.dir_cache_misses >= 1

    def test_perfect_model_faster_than_base(self):
        lat = {}
        for model in ("base", "intperfect"):
            m = small_machine(model, n_nodes=1)
            done = Completion(m)
            m.nodes[0].hierarchy.load(0x1000, False, done.cb("ld"))
            m.quiesce()
            lat[model] = done.cycle("ld")
        assert lat["intperfect"] < lat["base"]

    def test_picache_warms_up(self):
        m = small_machine("base", n_nodes=1)
        done = Completion(m)
        h = m.nodes[0].hierarchy
        h.load(0x10000, False, done.cb("a"))
        m.quiesce()
        cold = m.nodes[0].stats.protocol.picache_misses
        h.load(0x20000, False, done.cb("b"))
        m.quiesce()
        assert m.nodes[0].stats.protocol.picache_misses == cold
