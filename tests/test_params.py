"""Configuration objects: Table 2/3/4 defaults and validation."""

import dataclasses

import pytest

from repro.common.errors import ConfigError
from repro.common.params import (
    PERFECT,
    CacheParams,
    MachineParams,
    MemoryParams,
    NetworkParams,
    ProcessorParams,
)


class TestCacheParams:
    def test_paper_l1d_geometry(self):
        c = CacheParams(32 * 1024, 32, 2, hit_latency=1)
        assert c.n_sets == 512
        assert c.n_lines == 1024

    def test_paper_l2_geometry(self):
        c = CacheParams(2 * 1024 * 1024, 128, 8, hit_latency=9)
        assert c.n_sets == 2048

    def test_rejects_non_pow2_line(self):
        with pytest.raises(ConfigError):
            CacheParams(1024, 48, 2, hit_latency=1)

    def test_rejects_non_divisible_size(self):
        with pytest.raises(ConfigError):
            CacheParams(1000, 32, 2, hit_latency=1)

    def test_rejects_non_pow2_sets(self):
        with pytest.raises(ConfigError):
            CacheParams(96, 32, 1, hit_latency=1)


class TestProcessorParams:
    @pytest.mark.parametrize(
        "ways,regs", [(1, 160), (2, 192), (4, 256)]
    )
    def test_physical_register_provisioning(self, ways, regs):
        # Table 2: 160/192/256 integer registers for 1/2/4-way.
        pp = ProcessorParams(app_threads=ways)
        assert pp.physical_int_regs == regs
        assert pp.physical_fp_regs == regs

    def test_baseline_gets_same_registers_as_smtp(self):
        base = ProcessorParams(app_threads=2, protocol_thread=False)
        smtp = ProcessorParams(app_threads=2, protocol_thread=True)
        assert base.physical_int_regs == smtp.physical_int_regs

    def test_total_threads_includes_protocol(self):
        assert ProcessorParams(app_threads=2).total_threads == 2
        assert ProcessorParams(app_threads=2, protocol_thread=True).total_threads == 3

    def test_protocol_thread_id(self):
        pp = ProcessorParams(app_threads=4, protocol_thread=True)
        assert pp.protocol_thread_id == 4
        assert ProcessorParams(app_threads=4).protocol_thread_id is None

    def test_rejects_bad_thread_count(self):
        with pytest.raises(ConfigError):
            ProcessorParams(app_threads=3)

    def test_scaled_shrinks_caches_only(self):
        pp = ProcessorParams().scaled(32)
        assert pp.l2.size_bytes == 2 * 1024 * 1024 // 32
        assert pp.l2.line_bytes == 128
        assert pp.l2.hit_latency == 9
        assert pp.mshrs == 16

    def test_scaled_floors_at_four_sets(self):
        pp = ProcessorParams().scaled(10_000_000)
        assert pp.l1d.n_sets >= 4


class TestMachineParams:
    def _mp(self, **kw):
        defaults = dict(
            model="smtp",
            proc=ProcessorParams(protocol_thread=True),
            protocol_engine="thread",
        )
        defaults.update(kw)
        return MachineParams(**defaults)

    def test_mc_divisor_half_speed(self):
        assert self._mp(mc_freq_ghz=1.0).mc_divisor == 2

    def test_mc_divisor_base_400mhz(self):
        mp = MachineParams(
            model="base", proc=ProcessorParams(), protocol_engine="pp",
            mc_freq_ghz=0.4, dir_cache=512 * 1024,
        )
        assert mp.mc_divisor == 5

    def test_sdram_cycles_80ns_at_2ghz(self):
        assert self._mp().sdram_access_cycles == 160

    def test_hop_cycles_25ns(self):
        assert self._mp().hop_cycles == 50

    def test_data_message_serialization(self):
        # (128 + 16) bytes at 1 GB/s = 144 ns = 288 cycles @ 2 GHz.
        assert self._mp().data_msg_link_cycles == 288

    def test_directory_width_by_size(self):
        assert self._mp(n_nodes=16).directory_bits == 32
        assert self._mp(n_nodes=32).directory_bits == 64

    def test_rejects_non_pow2_nodes(self):
        with pytest.raises(ConfigError):
            self._mp(n_nodes=3)

    def test_smtp_requires_protocol_thread(self):
        with pytest.raises(ConfigError):
            MachineParams(
                model="smtp", proc=ProcessorParams(), protocol_engine="thread"
            )

    def test_pp_rejects_protocol_thread(self):
        with pytest.raises(ConfigError):
            MachineParams(
                model="base",
                proc=ProcessorParams(protocol_thread=True),
                protocol_engine="pp",
            )

    def test_4ghz_doubles_cycle_counts(self):
        mp2 = self._mp()
        mp4 = MachineParams(
            model="smtp",
            proc=dataclasses.replace(
                ProcessorParams(protocol_thread=True), freq_ghz=4.0
            ),
            protocol_engine="thread",
            mc_freq_ghz=2.0,
        )
        assert mp4.sdram_access_cycles == 2 * mp2.sdram_access_cycles
        assert mp4.hop_cycles == 2 * mp2.hop_cycles


class TestOtherParams:
    def test_memory_defaults(self):
        m = MemoryParams()
        assert m.sdram_access_ns == 80.0
        assert m.ni_input_queue == 2
        assert m.virtual_networks == 4

    def test_network_defaults(self):
        n = NetworkParams()
        assert n.router_ports == 6
        assert n.bristle == 2

    def test_perfect_marker(self):
        assert PERFECT == "perfect"
