"""The SMTp mechanism: PPCV handshake, switch/ldctxt sequencing,
look-ahead scheduling, reserved resources, occupancy accounting."""

import pytest

from repro.apps.program import KernelBuilder, ThreadProgram
from tests.conftest import Completion, small_machine


def smtp_machine(n_nodes=1, las=True, **kw):
    m = small_machine(
        "smtp", n_nodes=n_nodes, look_ahead_scheduling=las, **kw
    )

    def idle(k):
        k.alu()
        yield

    m.install_cores(
        [
            [ThreadProgram(idle, KernelBuilder(0, 0x400000 + n * 0x10000), m.wheel)]
            for n in range(n_nodes)
        ]
    )
    return m


class TestHandlerExecution:
    def test_miss_dispatches_handler_to_pipeline(self):
        m = smtp_machine()
        done = Completion(m)
        m.nodes[0].hierarchy.load(0x1000, False, done.cb("ld"))
        m.quiesce()
        p = m.nodes[0].stats.protocol
        assert p.handlers == 1
        assert p.handlers_by_type == {"h_get": 1}
        assert p.instructions > 10  # retired through the real pipeline

    def test_handlers_serialize_through_context(self):
        m = smtp_machine()
        done = Completion(m)
        for i in range(4):
            m.nodes[0].hierarchy.load(0x10000 * (i + 1), False, done.cb(str(i)))
        m.quiesce()
        assert m.nodes[0].stats.protocol.handlers == 4
        port = m.nodes[0].mc.engine
        # The final handler's SWITCH legitimately stalls forever
        # waiting for more traffic; idle() accounts for that.
        assert port.started_count == 4
        assert port.idle()

    def test_protocol_branches_use_predictor(self):
        m = smtp_machine()
        done = Completion(m)
        for i in range(40):
            m.nodes[0].hierarchy.load(0x20000 + 0x1000 * i, False, done.cb(str(i)))
            m.quiesce()
        p = m.nodes[0].stats.protocol
        assert p.branches >= 40
        # The same UNOWNED path repeats; once the local history
        # saturates the branch becomes predictable.
        assert p.mispredicts < 0.7 * p.branches

    def test_busy_cycles_bounded_by_runtime(self):
        m = smtp_machine()
        done = Completion(m)
        m.nodes[0].hierarchy.load(0x1000, False, done.cb("ld"))
        m.quiesce()
        p = m.nodes[0].stats.protocol
        assert 0 < p.busy_cycles <= m.cycle

    def test_directory_lives_in_shared_caches(self):
        m = smtp_machine()
        done = Completion(m)
        m.nodes[0].hierarchy.load(0x1000, False, done.cb("ld"))
        m.quiesce()
        # The handler's dir-entry access went through L1D/L2 as a
        # protocol access.
        assert m.nodes[0].stats.l1d.proto_misses + m.nodes[0].stats.l1d.proto_hits > 0


class TestLookAheadScheduling:
    def _run_burst(self, las):
        m = smtp_machine(las=las)
        done = Completion(m)
        for i in range(6):
            m.nodes[0].hierarchy.load(0x30000 + 0x1000 * i, False, done.cb(str(i)))
        m.quiesce()
        return m.cycle

    def test_las_no_slower(self):
        with_las = self._run_burst(True)
        without = self._run_burst(False)
        assert with_las <= without

    def test_las_config_plumbs_through(self):
        m = smtp_machine(las=False)
        assert m.nodes[0].mc.engine.las is False


class TestReservedResources:
    def test_pools_carry_reservations(self):
        m = smtp_machine()
        core = m.nodes[0].core
        assert core.iq_pool.reserved == 1
        assert core.lsq_pool.reserved == 1
        assert core.sb_pool.reserved == 1
        assert core.bstack_pool.reserved == 1
        assert core.decode_q.reserved == 1
        assert core.rename_q.reserved == 1
        assert core.rename.reserved_int == 1
        assert m.nodes[0].hierarchy.mshrs.protocol_reserved == 1

    def test_baseline_models_have_no_reservations(self):
        m = small_machine("base", n_nodes=1)
        assert m.nodes[0].hierarchy.mshrs.protocol_reserved == 0

    def test_peak_sampling(self):
        m = smtp_machine()
        done = Completion(m)
        m.nodes[0].hierarchy.load(0x1000, False, done.cb("ld"))
        m.quiesce()
        m.finish()
        peaks = m.nodes[0].stats.peaks
        assert peaks.int_regs >= 32  # boot-mapped protocol registers


class TestMultiNodeSMTp:
    def test_remote_miss_runs_handlers_at_both_ends(self):
        m = smtp_machine(n_nodes=2)
        done = Completion(m)
        remote = (1 << 22) + 0x100  # homed at node 1
        m.nodes[0].hierarchy.load(remote, False, done.cb("ld"))
        m.quiesce()
        assert "pi_fwd_get" in m.nodes[0].stats.protocol.handlers_by_type
        assert "h_get" in m.nodes[1].stats.protocol.handlers_by_type
        assert "h_reply_data_ex" in m.nodes[0].stats.protocol.handlers_by_type

    def test_full_intervention_chain(self):
        m = smtp_machine(n_nodes=2)
        done = Completion(m)
        addr = 0x40000  # homed at node 0
        m.nodes[1].hierarchy.store(addr, False, 7, done.cb("w"))
        m.quiesce()
        m.nodes[0].hierarchy.load(addr, False, done.cb("r"))
        m.quiesce()
        h0 = m.nodes[0].stats.protocol.handlers_by_type
        h1 = m.nodes[1].stats.protocol.handlers_by_type
        assert "h_int_shared" in h1  # owner probed
        assert "h_swb" in h0  # revision back at home
        assert done.value("r") == 7
        m.final_checks()


class TestFetchStarvation:
    def test_protocol_thread_not_starved_by_stalled_app_threads(self):
        """Regression: idle application threads with ICOUNT 0 must not
        monopolize the two fetch slots while the protocol thread has a
        handler to run (livelock: app thread 0's miss waits on the
        handler, the handler waits on fetch)."""
        from repro.sim.driver import run_app

        st = run_app("lu", "smtp", n_nodes=1, ways=4, preset="tiny",
                     check_coherence=True, max_cycles=3_000_000)
        assert all(t.done for t in st.app_threads())
