"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_models_lists_all_five(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for model in ("base", "intperfect", "int512kb", "int64kb", "smtp"):
            assert model in out

    def test_apps_lists_presets(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "fft" in out and "water" in out and "molecules" in out

    def test_handlers_table(self, capsys):
        assert main(["handlers"]) == 0
        out = capsys.readouterr().out
        assert "h_get" in out and "h_am_op" in out

    def test_handlers_disassembly(self, capsys):
        assert main(["handlers", "--name", "h_getx"]) == 0
        out = capsys.readouterr().out
        assert "SENDH" in out and "POPC" in out

    @pytest.mark.slow
    def test_run_water_tiny(self, capsys):
        rc = main(
            ["run", "water", "--model", "base", "--nodes", "1",
             "--preset", "tiny", "--check", "-v"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cycles=" in out and "protocol" in out

    def test_bad_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "linpack"])
