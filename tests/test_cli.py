"""The ``python -m repro`` command-line interface.

``sweep`` has its own CLI coverage in ``tests/test_sweep.py``; the
``fuzz`` tests here run in-process (``--jobs 0``) so a monkey-patched
protocol bug is visible to the campaign.
"""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_models_lists_all_five(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for model in ("base", "intperfect", "int512kb", "int64kb", "smtp"):
            assert model in out

    def test_apps_lists_presets(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "fft" in out and "water" in out and "molecules" in out

    def test_handlers_table(self, capsys):
        assert main(["handlers"]) == 0
        out = capsys.readouterr().out
        assert "h_get" in out and "h_am_op" in out

    def test_handlers_disassembly(self, capsys):
        assert main(["handlers", "--name", "h_getx"]) == 0
        out = capsys.readouterr().out
        assert "SENDH" in out and "POPC" in out

    @pytest.mark.slow
    def test_run_water_tiny(self, capsys):
        rc = main(
            ["run", "water", "--model", "base", "--nodes", "1",
             "--preset", "tiny", "--check", "-v"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cycles=" in out and "protocol" in out

    def test_bad_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "linpack"])


class TestFuzzCLI:
    def fuzz(self, tmp_path, *extra):
        return main([
            "fuzz", "--jobs", "0", "--ops", "60",
            "--artifacts", str(tmp_path / "artifacts"),
            "--out", str(tmp_path),
            *extra,
        ])

    def test_clean_campaign_exits_zero(self, tmp_path, capsys):
        assert self.fuzz(tmp_path, "--seeds", "2", "--faults", "off") == 0
        out = capsys.readouterr().out
        assert "2 ok, 0 failed" in out
        assert (tmp_path / "FUZZ_fuzz.json").exists()
        assert not (tmp_path / "artifacts").exists()

    def test_bad_faults_spec_exits_two(self, tmp_path, capsys):
        assert self.fuzz(tmp_path, "--faults", "bogus") == 2
        assert "unknown fault preset" in capsys.readouterr().err

    def test_bad_sharing_rejected_by_argparse(self, tmp_path):
        with pytest.raises(SystemExit):
            self.fuzz(tmp_path, "--sharing", "bogus")

    def test_replay_of_missing_artifact_exits_two(self, tmp_path, capsys):
        assert main(["fuzz", "--replay", str(tmp_path / "nope.json")]) == 2
        assert "cannot replay" in capsys.readouterr().err

    def test_violation_exits_nonzero_and_writes_artifact(
        self, tmp_path, capsys, monkeypatch
    ):
        from tests.test_fuzz import install_dropped_inval_bug

        install_dropped_inval_bug(monkeypatch)
        rc = self.fuzz(tmp_path, "--seeds", "10", "--ops", "100", "--no-shrink")
        assert rc == 1
        out = capsys.readouterr().out
        assert "violation" in out
        artifacts = list((tmp_path / "artifacts").glob("fuzz_*.json"))
        assert artifacts

        # While the bug is installed the artifact replays to exit 0...
        assert main(["fuzz", "--replay", str(artifacts[0])]) == 0
        assert "reproduced" in capsys.readouterr().out

    def test_replay_of_fixed_bug_exits_three(self, tmp_path, capsys):
        with pytest.MonkeyPatch.context() as mp:
            from tests.test_fuzz import install_dropped_inval_bug

            install_dropped_inval_bug(mp)
            assert self.fuzz(
                tmp_path, "--seeds", "10", "--ops", "100", "--no-shrink"
            ) == 1
        artifacts = list((tmp_path / "artifacts").glob("fuzz_*.json"))
        # ...and with the bug gone, replay reports non-reproduction.
        assert main(["fuzz", "--replay", str(artifacts[0])]) == 3
        assert "did NOT reproduce" in capsys.readouterr().out
