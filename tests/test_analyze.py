"""The protocol verifier's three passes, run against the real handler
table and against deliberately broken mutants.

The mutants are the acceptance test for the whole subsystem: a handler
bug a reviewer could plausibly write (skipping an intervention, dropping
a header, reading a clobbered register) must surface as a finding, and
the model checker's counterexample must replay through the fuzz
pipeline.
"""

import pytest

from repro.network.messages import MsgType
from repro.protocol import directory as d
from repro.protocol import extensions
from repro.protocol.directory import DirectoryLayout
from repro.protocol.handlers import (
    T0,
    T3,
    T4,
    build_handler_table,
    compose_send,
    dir_prologue,
)
from repro.protocol.isa import HandlerBuilder

from repro.analyze.absint import run_static_pass
from repro.analyze.dispatch import run_dispatch_pass
from repro.analyze.findings import SEV_ERROR
from repro.analyze.model import check_model
from repro.analyze.suppressions import SUPPRESSIONS

LAYOUT = DirectoryLayout(local_memory_bytes=1 << 22, line_bytes=128, entry_bytes=4)


def real_table():
    table = build_handler_table()
    extensions.install(table)
    return table


def analyze_one(handler):
    """Static-pass findings for a single handler program."""
    table = real_table()
    table.place(handler)
    findings, _ = run_static_pass(table, LAYOUT)
    return [f for f in findings if f.handler == handler.name]


class TestStaticPass:
    def test_shipped_table_is_clean(self):
        findings, inventory = run_static_pass(real_table(), LAYOUT)
        errors = [f for f in findings if f.severity == SEV_ERROR]
        assert errors == []
        assert len(inventory) == len(real_table().by_name)

    def test_every_handler_has_a_worst_case_bound(self):
        _, inventory = run_static_pass(real_table(), LAYOUT)
        unbounded = [r["name"] for r in inventory if r["worst_case"] is None]
        assert unbounded == []

    def test_reply_handlers_meet_paper_critical_budget(self):
        # SMTp §3: the critical requester-side reply handlers are a
        # handful of instructions, so the protocol thread never stalls
        # the pipeline long.
        _, inventory = run_static_pass(real_table(), LAYOUT)
        for row in inventory:
            if str(row["name"]).startswith("h_reply"):
                assert int(row["worst_case"]) <= 6, row

    def test_undefined_read_is_flagged(self):
        h = HandlerBuilder("h_mut_undef")
        h.add(T4, T3, T3)  # T3 never written: undefined at entry
        h.done()
        findings = analyze_one(h.build())
        assert any(f.code == "undefined-read" for f in findings)

    def test_unreachable_instruction_is_flagged(self):
        h = HandlerBuilder("h_mut_unreach")
        h.j("end")
        h.li(T4, 1)  # skipped by the unconditional jump
        h.label("end")
        h.done()
        findings = analyze_one(h.build())
        assert any(f.code == "unreachable" for f in findings)

    def test_send_without_header_is_flagged(self):
        from repro.protocol.isa import ADDR

        h = HandlerBuilder("h_mut_nohdr")
        h.senda(ADDR)  # no SENDH latched
        h.done()
        findings = analyze_one(h.build())
        assert any(f.code == "send-without-header" for f in findings)

    def test_unbounded_loop_is_flagged(self):
        h = HandlerBuilder("h_mut_loop")
        h.li(T4, 1)
        h.label("spin")
        h.addi(T4, T4, 1)
        h.bnez(T4, "spin")  # not the sanctioned sharer walk
        h.done()
        findings = analyze_one(h.build())
        assert any(f.code == "unbounded-loop" for f in findings)

    def test_sanctioned_inval_loop_is_not_flagged(self):
        # The real h_getx contains the sharer-walk loop; the shipped-
        # table cleanliness above proves it passes, but pin it down.
        findings, inventory = run_static_pass(real_table(), LAYOUT)
        assert not any(
            f.code == "unbounded-loop" and f.handler == "h_getx"
            for f in findings
        )
        getx = next(r for r in inventory if r["name"] == "h_getx")
        assert int(getx["loops"]) >= 1


class TestDispatchPass:
    def test_shipped_table_all_trap_findings_suppressed(self):
        findings, stats = run_dispatch_pass(real_table(), LAYOUT)
        unsuppressed = [
            f for f in findings
            if not any(s.matches(f) for s in SUPPRESSIONS)
        ]
        assert unsuppressed == []
        assert stats["pairs_enumerated"] > 80

    def test_missing_handler_is_flagged(self):
        table = real_table()
        del table.by_name["h_put"]
        findings, _ = run_dispatch_pass(table, LAYOUT)
        assert any(
            f.code == "missing-handler" and f.handler == "h_put"
            for f in findings
        )

    def test_dead_handler_is_flagged(self):
        table = real_table()
        h = HandlerBuilder("h_mut_orphan")
        h.done()
        table.place(h.build())
        findings, _ = run_dispatch_pass(table, LAYOUT)
        assert any(
            f.code == "dead-handler" and f.handler == "h_mut_orphan"
            for f in findings
        )

    def test_new_trap_in_suppressed_handler_still_surfaces(self):
        # The h_put suppression lists exact state labels; a trap at a
        # state the justification does not cover must not ride along.
        findings, _ = run_dispatch_pass(real_table(), LAYOUT)
        h_put_traps = [
            f for f in findings
            if f.code == "trap-reachable" and f.handler == "h_put"
        ]
        assert h_put_traps, "enumeration should reach h_put's guard trap"
        for f in h_put_traps:
            assert any(s.matches(f) for s in SUPPRESSIONS), f


class TestModelPass:
    def test_two_node_exhaustive_is_clean(self):
        result = check_model(n_nodes=2, loads=1, stores=1, jobs=1)
        assert result.violation is None
        assert not result.truncated
        assert result.states > 1000

    def test_worker_pool_path_agrees(self):
        serial = check_model(n_nodes=2, loads=1, stores=1, jobs=1)
        pooled = check_model(n_nodes=2, loads=1, stores=1, jobs=2)
        assert pooled.violation is None
        assert not pooled.truncated
        # Workers keep private visited sets, so pooled counts are an
        # upper bound on the true state count — never an undercount.
        assert pooled.states >= serial.states

    def test_bad_config_rejected(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            check_model(n_nodes=7)
        with pytest.raises(ConfigError):
            check_model(n_nodes=2, loads=-1)
        with pytest.raises(ConfigError):
            check_model(n_nodes=2, n_lines=4)

    def test_state_cap_reports_truncation(self):
        result = check_model(n_nodes=2, loads=1, stores=1, jobs=1,
                             max_states=50)
        assert result.truncated
        assert result.violation is None


def broken_getx_table():
    """A table whose h_getx grants exclusivity without ever probing
    the current owner — the classic skipped-intervention bug."""
    table = build_handler_table()
    h = HandlerBuilder("h_getx")
    dir_prologue(h)
    h.slli(T4, T3, d.OWNER_SHIFT)
    h.ori(T4, T4, d.EXCLUSIVE)
    h.st(T4, T0)
    compose_send(h, MsgType.DATA_EXCL, dest_reg=T3, req_reg=T3)
    h.done()
    table.place(h.build())
    extensions.install(table)
    return table


class TestMutationDetection:
    def test_skipped_intervention_breaks_swmr(self):
        result = check_model(
            n_nodes=2, loads=1, stores=1, jobs=1, table=broken_getx_table()
        )
        assert result.violation is not None
        assert result.violation.code in ("swmr", "dir-cache-mismatch")
        assert any("store" in step for step in result.violation.trace)
