"""Soundness of the model checker's state-space reductions.

Three layers, mirroring the arguments in ``analyze/symmetry.py`` and
``model.ample_probe``:

* **Symmetry congruence** (hypothesis): over random reachable states,
  permute-then-step equals step-then-permute, canonicalization is
  idempotent, and every member of an orbit canonicalizes to the same
  representative.  This is the load-bearing property — it is exactly
  the hypothesis under which exploring only canonical representatives
  preserves every violation.
* **Ample-set safety** (hypothesis): whenever ``ample_probe`` elects a
  singleton set, the elected dispatch commutes one-step with every
  other enabled transition, and prunes nothing permanently (every
  other transition is still enabled afterwards).
* **Agreement end-to-end**: reduced and flat exploration agree on the
  verdict for the shipped table and for a broken one, and the
  disk-backed frontier survives a mid-run kill.
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.protocol import extensions
from repro.protocol.directory import DirectoryLayout
from repro.protocol.handlers import build_handler_table

from repro.analyze import symmetry as sym
from repro.analyze.model import (
    ample_probe,
    check_model,
    check_state,
    count_enabled,
    expand,
    initial_state,
    successors,
)

LAYOUT = DirectoryLayout(
    local_memory_bytes=1 << 22, line_bytes=128, entry_bytes=4
)


def shipped_table():
    table = build_handler_table()
    extensions.install(table)
    return table


TABLE = shipped_table()


# ---------------------------------------------------------------------------
# Random reachable states: a bounded walk steered by hypothesis
# ---------------------------------------------------------------------------


def walk(n_nodes, n_lines, loads, stores, choices):
    """Follow ``choices`` through the full (unreduced) transition
    relation; returns the state where the walk ends."""
    st_ = initial_state(n_nodes, loads, stores, n_lines)
    for c in choices:
        succ = successors(st_, LAYOUT, TABLE)
        if not succ:
            break
        st_ = succ[c % len(succ)][1]
    return st_


reachable_configs = st.tuples(
    st.integers(min_value=2, max_value=3),  # nodes
    st.integers(min_value=1, max_value=2),  # lines
    st.integers(min_value=0, max_value=1),  # loads
    st.integers(min_value=1, max_value=2),  # stores
    st.lists(st.integers(min_value=0, max_value=10 ** 6), max_size=14),
)

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSymmetryCongruence:
    @given(cfg=reachable_configs)
    @SETTINGS
    def test_canonicalization_is_idempotent(self, cfg):
        state = walk(*cfg)
        canon, _, _, orbit = sym.canonicalize(state)
        again, sigma, lam, orbit2 = sym.canonicalize(canon)
        assert sym.state_key(again) == sym.state_key(canon)
        assert sigma == sym.identity(cfg[0])
        assert lam == sym.identity(cfg[1])
        assert orbit == orbit2

    @given(cfg=reachable_configs, data=st.data())
    @SETTINGS
    def test_orbit_members_share_a_canonical_form(self, cfg, data):
        state = walk(*cfg)
        n_nodes, n_lines = cfg[0], cfg[1]
        sigma = data.draw(st.sampled_from(sym.node_perms(n_nodes)))
        lam = data.draw(st.sampled_from(sym.line_perms(n_lines)))
        permuted = sym.permute_state(state, sigma, lam)
        canon_a, _, _, orbit_a = sym.canonicalize(state)
        canon_b, _, _, orbit_b = sym.canonicalize(permuted)
        assert sym.state_key(canon_a) == sym.state_key(canon_b)
        assert orbit_a == orbit_b

    @given(cfg=reachable_configs, data=st.data())
    @SETTINGS
    def test_permute_then_step_equals_step_then_permute(self, cfg, data):
        """The congruence that makes symmetry reduction sound."""
        state = walk(*cfg)
        n_nodes, n_lines = cfg[0], cfg[1]
        sigma = data.draw(st.sampled_from(sym.node_perms(n_nodes)))
        lam = data.draw(st.sampled_from(sym.line_perms(n_lines)))
        permuted = sym.permute_state(state, sigma, lam)

        direct = successors(state, LAYOUT, TABLE)
        mirrored = successors(permuted, LAYOUT, TABLE)
        assert len(direct) == len(mirrored)

        want = {
            (
                sym.remap_label(label, sigma, lam),
                sym.state_key(sym.permute_state(nxt, sigma, lam)),
            )
            for label, nxt in direct
        }
        got = {
            (label, sym.state_key(nxt)) for label, nxt in mirrored
        }
        assert want == got

    @given(cfg=reachable_configs, data=st.data())
    @SETTINGS
    def test_permutation_roundtrip(self, cfg, data):
        state = walk(*cfg)
        n_nodes, n_lines = cfg[0], cfg[1]
        sigma = data.draw(st.sampled_from(sym.node_perms(n_nodes)))
        lam = data.draw(st.sampled_from(sym.line_perms(n_lines)))
        back = sym.permute_state(
            sym.permute_state(state, sigma, lam),
            sym.invert(sigma), sym.invert(lam),
        )
        assert sym.state_key(back) == sym.state_key(state)


class TestAmpleSafety:
    @given(cfg=reachable_configs)
    @SETTINGS
    def test_elected_dispatch_commutes_and_preserves_enabledness(self, cfg):
        state = walk(*cfg)
        if ample_probe(state, home=0) is None:
            return
        pairs, pruned = expand(state, LAYOUT, TABLE, por=True)
        assert len(pairs) == 1
        ample_label, ample_state = pairs[0]
        full = successors(state, LAYOUT, TABLE)
        assert pruned == len(full) - 1
        assert ample_label in {label for label, _ in full}

        after_ample = dict(successors(ample_state, LAYOUT, TABLE))
        for label, other_state in full:
            if label == ample_label:
                continue
            # Not permanently pruned: the step is still enabled after
            # the ample dispatch...
            assert label in after_ample, (
                f"ample dispatch {ample_label!r} disabled {label!r}"
            )
            # ...and the two orders land in the same state (one-step
            # commutation), so no interleaving is lost.
            after_other = dict(successors(other_state, LAYOUT, TABLE))
            assert ample_label in after_other, (
                f"{label!r} disabled the ample dispatch {ample_label!r}"
            )
            assert sym.state_key(after_ample[label]) == sym.state_key(
                after_other[ample_label]
            ), f"{ample_label!r} and {label!r} do not commute"

    @given(cfg=reachable_configs)
    @SETTINGS
    def test_count_enabled_matches_enumeration(self, cfg):
        state = walk(*cfg)
        assert count_enabled(state) == len(successors(state, LAYOUT, TABLE))


# ---------------------------------------------------------------------------
# End-to-end agreement
# ---------------------------------------------------------------------------


class TestReducedFlatAgreement:
    def test_verdicts_and_orbit_accounting_agree(self):
        flat = check_model(
            n_nodes=3, loads=0, stores=1, jobs=1,
            reduce_sym=False, reduce_por=False,
        )
        sym_only = check_model(
            n_nodes=3, loads=0, stores=1, jobs=1, reduce_por=False
        )
        reduced = check_model(n_nodes=3, loads=0, stores=1, jobs=1)
        for r in (flat, sym_only, reduced):
            assert r.violation is None
            assert not r.truncated
        # Symmetry alone: fewer canonical states, but their orbit
        # sizes sum to exactly the flat count — every reachable orbit
        # is covered, no state double-counted.
        assert sym_only.states < flat.states
        assert sym_only.sym_states == flat.states
        # Ample sets compound the saving and actually prune work.
        assert reduced.states <= sym_only.states
        assert reduced.pruned > 0

    def test_broken_table_verdicts_agree(self):
        from test_analyze import broken_getx_table

        table = broken_getx_table()
        reduced = check_model(
            n_nodes=2, loads=1, stores=1, jobs=1, table=table
        )
        flat = check_model(
            n_nodes=2, loads=1, stores=1, jobs=1, table=table,
            reduce_sym=False, reduce_por=False,
        )
        assert reduced.violation is not None
        assert flat.violation is not None
        assert reduced.violation.code == flat.violation.code
        # BFS order makes both traces minimal-length.
        assert len(reduced.violation.trace) == len(flat.violation.trace)

    def test_depth_cap_truncates(self):
        capped = check_model(n_nodes=2, loads=1, stores=1, jobs=1, depth=6)
        assert capped.truncated
        assert capped.violation is None
        assert capped.max_depth <= 6


class TestDiskFrontier:
    def test_matches_in_memory_and_resumes_when_done(self, tmp_path):
        mem = check_model(n_nodes=2, loads=0, stores=1, jobs=1)
        disk = check_model(
            n_nodes=2, loads=0, stores=1, jobs=2,
            frontier_dir=str(tmp_path / "f"),
        )
        assert disk.violation is None
        assert (disk.states, disk.transitions, disk.pruned) == (
            mem.states, mem.transitions, mem.pruned
        )
        assert disk.max_depth == mem.max_depth
        # Re-invoking over a finished run returns the recorded result
        # without re-exploring.
        again = check_model(
            n_nodes=2, loads=0, stores=1, jobs=2,
            frontier_dir=str(tmp_path / "f"),
        )
        assert (again.states, again.transitions) == (
            disk.states, disk.transitions
        )

    def test_config_mismatch_is_refused(self, tmp_path):
        check_model(
            n_nodes=2, loads=0, stores=1, jobs=2,
            frontier_dir=str(tmp_path / "f"),
        )
        with pytest.raises(ConfigError):
            check_model(
                n_nodes=2, loads=1, stores=1, jobs=2,
                frontier_dir=str(tmp_path / "f"),
            )

    def test_survives_a_mid_run_kill(self, tmp_path, monkeypatch):
        """Kill the coordinator after two waves; a fresh call resumes
        from the last committed wave and finishes with identical
        counts."""
        import repro.sim.sweep as sweep

        real_pool_map = sweep.pool_map
        calls = {"n": 0}

        def dying_pool_map(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 2:
                raise KeyboardInterrupt("simulated kill")
            return real_pool_map(*args, **kwargs)

        monkeypatch.setattr(sweep, "pool_map", dying_pool_map)
        with pytest.raises(KeyboardInterrupt):
            check_model(
                n_nodes=2, loads=0, stores=1, jobs=2,
                frontier_dir=str(tmp_path / "f"),
            )
        monkeypatch.setattr(sweep, "pool_map", real_pool_map)

        resumed = check_model(
            n_nodes=2, loads=0, stores=1, jobs=2,
            frontier_dir=str(tmp_path / "f"),
        )
        mem = check_model(n_nodes=2, loads=0, stores=1, jobs=1)
        assert resumed.violation is None
        assert (resumed.states, resumed.transitions, resumed.pruned) == (
            mem.states, mem.transitions, mem.pruned
        )

    def test_finds_violations_on_disk_too(self, tmp_path):
        from test_analyze import broken_getx_table

        table = broken_getx_table()
        mem = check_model(
            n_nodes=2, loads=1, stores=1, jobs=1, table=table
        )
        disk = check_model(
            n_nodes=2, loads=1, stores=1, jobs=2, table=table,
            frontier_dir=str(tmp_path / "f"),
        )
        assert disk.violation is not None
        assert disk.violation.code == mem.violation.code
        assert len(disk.violation.trace) == len(mem.violation.trace)
