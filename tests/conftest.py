"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.common.params import MachineParams, ProcessorParams
from repro.core.machine import Machine


def small_machine(
    model: str = "smtp",
    n_nodes: int = 2,
    ways: int = 1,
    **overrides,
) -> Machine:
    """A scaled machine with coherence checking on (for tests)."""
    from repro.core.models import make_machine_params

    kwargs = dict(
        cache_scale=32,
        dir_scale=256,
        local_memory_bytes=1 << 22,
        check_coherence=True,
        watchdog_cycles=300_000,
    )
    kwargs.update(overrides)
    mp = make_machine_params(model, n_nodes, ways, **kwargs)
    return Machine(mp)


def drive(machine: Machine, max_cycles: int = 500_000) -> None:
    """Step until quiesced (for memory-side tests with no cores)."""
    machine.quiesce(max_cycles)


class Completion:
    """Callback recorder for hierarchy operations."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.events = []

    def cb(self, tag: str):
        def fn(value: int) -> None:
            self.events.append((tag, self.machine.cycle, value))

        return fn

    def value(self, tag: str):
        for t, _, v in self.events:
            if t == tag:
                return v
        raise AssertionError(f"no completion recorded for {tag!r}")

    def cycle(self, tag: str):
        for t, c, _ in self.events:
            if t == tag:
                return c
        raise AssertionError(f"no completion recorded for {tag!r}")

    def __contains__(self, tag: str) -> bool:
        return any(t == tag for t, _, _ in self.events)


@pytest.fixture
def machine2():
    return small_machine("base", n_nodes=2)


@pytest.fixture
def smtp2():
    """SMTp machine with idle cores installed (so the protocol-thread
    engine exists for memory-side tests)."""
    from repro.apps.program import KernelBuilder, ThreadProgram

    m = small_machine("smtp", n_nodes=2)

    def empty(k):
        k.alu()
        yield

    m.install_cores(
        [
            [ThreadProgram(empty, KernelBuilder(0, 0x400000 + n * 0x10000), m.wheel)]
            for n in range(2)
        ]
    )
    return m
