"""The six workloads: completion, coherence, and structural signatures
(communication patterns that define each application)."""

import pytest

from repro.sim.driver import run_app
from repro.sim.experiments import APPS, PRESETS, preset_sizes

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("app", APPS)
def test_app_completes_on_smtp_with_audit(app):
    st = run_app(app, "smtp", n_nodes=2, ways=1, preset="tiny",
                 check_coherence=True)
    assert st.cycles > 0
    assert all(t.done for t in st.app_threads())


@pytest.mark.parametrize("app", APPS)
def test_app_completes_on_base_with_audit(app):
    st = run_app(app, "base", n_nodes=2, ways=1, preset="tiny",
                 check_coherence=True)
    assert st.cycles > 0


@pytest.mark.parametrize("app", APPS)
def test_app_two_way_smt(app):
    st = run_app(app, "smtp", n_nodes=2, ways=2, preset="tiny",
                 check_coherence=True)
    assert len(st.app_threads()) == 4
    assert all(t.done for t in st.app_threads())


def test_single_node_runs():
    st = run_app("fft", "smtp", n_nodes=1, ways=1, preset="tiny",
                 check_coherence=True)
    # Single node: no network messages at all.
    assert all(n.messages_in == 0 for n in st.nodes)


def test_fft_all_to_all_transpose_traffic():
    st = run_app("fft", "smtp", n_nodes=4, ways=1, preset="tiny",
                 check_coherence=True)
    # Every node both sends and receives remote requests.
    assert all(n.remote_requests_in > 0 for n in st.nodes)


def test_radix_scatter_writes_remote():
    st = run_app("radix", "base", n_nodes=4, ways=1, preset="tiny",
                 check_coherence=True)
    getx = sum(
        n.protocol.handlers_by_type.get("h_getx", 0) for n in st.nodes
    )
    assert getx > 10  # the permutation scatters ownership everywhere


def test_water_low_protocol_occupancy():
    """Water is the compute-intensive extreme (paper Table 7)."""
    water = run_app("water", "smtp", n_nodes=2, ways=1, preset="tiny")
    fft = run_app("fft", "smtp", n_nodes=2, ways=1, preset="tiny")
    assert (
        water.protocol_occupancy_mean() <= fft.protocol_occupancy_mean() * 1.5
    )


def test_ocean_uses_the_global_error_lock():
    st = run_app("ocean", "smtp", n_nodes=2, ways=1, preset="tiny",
                 check_coherence=True)
    atomics = sum(1 for n in st.nodes for t in n.threads)  # structural run ok
    assert atomics > 0


def test_lu_barriers_synchronize_steps():
    st = run_app("lu", "base", n_nodes=2, ways=1, preset="tiny",
                 check_coherence=True)
    # Barrier flags force upgrades every step.
    upgrades = sum(
        n.protocol.handlers_by_type.get("h_upgrade", 0) for n in st.nodes
    )
    assert upgrades > 0


def test_presets_cover_all_apps():
    for preset in PRESETS:
        for app in APPS:
            assert preset_sizes(app, preset)


def test_unknown_preset_raises():
    with pytest.raises(KeyError):
        preset_sizes("fft", "gigantic")


def test_size_override():
    st = run_app("water", "smtp", n_nodes=1, ways=1, preset="tiny",
                 sizes={"molecules": 4, "steps": 1})
    assert st.cycles > 0


def test_deterministic_across_runs():
    a = run_app("radix", "base", n_nodes=2, ways=1, preset="tiny")
    b = run_app("radix", "base", n_nodes=2, ways=1, preset="tiny")
    assert a.cycles == b.cycles
