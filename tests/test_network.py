"""Messages, topology and fabric: virtual networks, e-cube routing,
wormhole timing, link contention, NI backpressure."""

import pytest
from hypothesis import given, strategies as st

from repro.common.events import EventWheel
from repro.common.params import MachineParams, ProcessorParams
from repro.network.fabric import Interconnect
from repro.network.messages import Message, MsgType, virtual_network
from repro.network.topology import BristledHypercube


class TestVirtualNetworks:
    @pytest.mark.parametrize(
        "mtype,vn",
        [
            (MsgType.GET, 0),
            (MsgType.GETX, 0),
            (MsgType.UPGRADE, 0),
            (MsgType.DATA_SHARED, 1),
            (MsgType.DATA_EXCL, 1),
            (MsgType.NACK, 1),
            (MsgType.INV_ACK, 1),
            (MsgType.WB_ACK, 1),
            (MsgType.INT_SHARED, 2),
            (MsgType.INT_EXCL, 2),
            (MsgType.INVAL, 2),
            (MsgType.PUT, 2),
            (MsgType.SWB, 2),
            (MsgType.XFER, 2),
            (MsgType.INT_NACK, 2),
        ],
    )
    def test_vn_assignment(self, mtype, vn):
        assert virtual_network(mtype) == vn

    def test_data_bearing(self):
        assert Message(MsgType.DATA_EXCL, 0, 0, 1).carries_data
        assert Message(MsgType.PUT, 0, 0, 1).carries_data
        assert not Message(MsgType.GET, 0, 0, 1).carries_data

    def test_unique_uids(self):
        a = Message(MsgType.GET, 0, 0, 1)
        b = Message(MsgType.GET, 0, 0, 1)
        assert a.uid != b.uid


class TestTopology:
    def test_16_nodes_8_routers(self):
        t = BristledHypercube(16)
        assert t.n_routers == 8
        assert t.dim == 3

    def test_bristle_mapping(self):
        t = BristledHypercube(16)
        assert t.router_of(0) == 0
        assert t.router_of(1) == 0
        assert t.router_of(15) == 7
        assert t.nodes_of(3) == [6, 7]

    def test_single_node(self):
        t = BristledHypercube(1)
        assert t.n_routers == 1
        assert t.hops(0, 0) == 0

    def test_two_nodes_share_router(self):
        t = BristledHypercube(2)
        assert t.hops(0, 1) == 2  # inject + eject, same router

    def test_ecube_path(self):
        t = BristledHypercube(16)
        assert t.router_path(0, 7) == [0, 1, 3, 7]
        assert t.router_path(5, 5) == [5]

    def test_hop_symmetry(self):
        t = BristledHypercube(32)
        for a, b in [(0, 31), (5, 9), (14, 3)]:
            assert t.hops(a, b) == t.hops(b, a)

    @given(st.integers(0, 31), st.integers(0, 31))
    def test_path_connects_endpoints(self, a, b):
        t = BristledHypercube(32)
        path = t.router_path(t.router_of(a), t.router_of(b))
        assert path[0] == t.router_of(a)
        assert path[-1] == t.router_of(b)
        for x, y in zip(path, path[1:]):
            assert bin(x ^ y).count("1") == 1  # one dimension per hop

    def test_links_inventory(self):
        t = BristledHypercube(4)
        links = t.links()
        injections = [l for l in links if l[0] == "inj"]
        assert len(injections) == 4


def make_fabric(n_nodes=4):
    mp = MachineParams(
        model="base", n_nodes=n_nodes, proc=ProcessorParams(),
        protocol_engine="pp", dir_cache=1024,
    )
    wheel = EventWheel()
    return Interconnect(mp, wheel), wheel, mp


class TestFabric:
    def test_delivery(self):
        fabric, wheel, mp = make_fabric()
        got = []
        fabric.attach(3, lambda m: got.append(m) or True)
        fabric.send(Message(MsgType.GET, 0x100, src=0, dest=3))
        for c in range(1, 5000):
            wheel.tick(c)
            if got:
                break
        assert got and got[0].addr == 0x100

    def test_latency_scales_with_distance(self):
        fabric, wheel, mp = make_fabric(16)
        arrivals = {}
        for dest in (1, 15):
            fabric.attach(dest, lambda m, d=dest: arrivals.__setitem__(d, wheel.now) or True)
        fabric.send(Message(MsgType.GET, 0, src=0, dest=1))
        fabric.send(Message(MsgType.GET, 0, src=0, dest=15))
        for c in range(1, 10000):
            wheel.tick(c)
        assert arrivals[1] < arrivals[15]

    def test_send_to_self_rejected(self):
        fabric, wheel, mp = make_fabric()
        with pytest.raises(ValueError):
            fabric.send(Message(MsgType.GET, 0, src=2, dest=2))

    def test_backpressure_retries(self):
        fabric, wheel, mp = make_fabric()
        attempts = []
        accept_after = 3

        def deliver(m):
            attempts.append(wheel.now)
            return len(attempts) >= accept_after

        fabric.attach(1, deliver)
        fabric.send(Message(MsgType.GET, 0, src=0, dest=1))
        for c in range(1, 5000):
            wheel.tick(c)
        assert len(attempts) == accept_after

    def test_link_contention_serializes(self):
        """Two data messages on the same path: second arrives later by
        at least the serialization time."""
        fabric, wheel, mp = make_fabric()
        arrivals = []
        fabric.attach(1, lambda m: arrivals.append(wheel.now) or True)
        fabric.send(Message(MsgType.DATA_EXCL, 0, src=0, dest=1, version=1))
        fabric.send(Message(MsgType.DATA_EXCL, 0x80, src=0, dest=1, version=1))
        for c in range(1, 20000):
            wheel.tick(c)
        assert len(arrivals) == 2
        assert arrivals[1] - arrivals[0] >= mp.data_msg_link_cycles

    def test_stats(self):
        fabric, wheel, mp = make_fabric()
        fabric.attach(1, lambda m: True)
        fabric.send(Message(MsgType.GET, 0, src=0, dest=1))
        for c in range(1, 5000):
            wheel.tick(c)
        assert fabric.messages_sent == 1
        assert fabric.mean_latency() > 0
