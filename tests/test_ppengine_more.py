"""PP engine details: dual-issue pairing, register persistence across
handlers, and Base-vs-integrated timing relationships."""

import pytest

from tests.conftest import Completion, small_machine


class TestEngineTiming:
    def _one_miss_latency(self, model, addr=0x1000, n_nodes=1):
        m = small_machine(model, n_nodes=n_nodes)
        done = Completion(m)
        m.nodes[0].hierarchy.load(addr, False, done.cb("x"))
        m.quiesce()
        return done.cycle("x")

    def test_mc_clock_orders_latency(self):
        # Warm-cache effects aside, the 400 MHz engine must not beat
        # the full-speed one on the identical single miss.
        base = self._one_miss_latency("base")
        perfect = self._one_miss_latency("intperfect")
        assert perfect < base

    def test_second_miss_faster_warm_caches(self):
        m = small_machine("base", n_nodes=1)
        done = Completion(m)
        m.nodes[0].hierarchy.load(0x1000, False, done.cb("a"))
        m.quiesce()
        t0 = m.cycle
        m.nodes[0].hierarchy.load(0x1080, False, done.cb("b"))
        m.quiesce()
        first = done.cycle("a")
        second = done.cycle("b") - t0
        assert second < first  # protocol I-cache and dir cache warm

    def test_registers_persist_across_handlers(self):
        """Boot-initialized config registers must survive handler after
        handler (the paper's always-mapped protocol registers)."""
        m = small_machine("base", n_nodes=1)
        engine = m.nodes[0].mc.engine
        from repro.protocol.isa import DIR_BASE, NODE_ID

        before = (engine.regs[DIR_BASE], engine.regs[NODE_ID])
        done = Completion(m)
        for i in range(5):
            m.nodes[0].hierarchy.load(0x1000 * (i + 1), False, done.cb(str(i)))
            m.quiesce()
        assert (engine.regs[DIR_BASE], engine.regs[NODE_ID]) == before

    def test_instruction_counts_scale_with_handler_length(self):
        m = small_machine("base", n_nodes=1)
        done = Completion(m)
        m.nodes[0].hierarchy.load(0x1000, False, done.cb("a"))
        m.quiesce()
        instrs_get = m.nodes[0].stats.protocol.instructions
        # h_get (unowned) retires roughly its static path length.
        assert 15 <= instrs_get <= 30


class TestEngineIntegration:
    def test_base_occupancy_exceeds_integrated(self):
        """Table 7's root cause: the slow engine is busy longer per
        handler."""
        results = {}
        for model in ("base", "int512kb"):
            m = small_machine(model, n_nodes=1)
            done = Completion(m)
            for i in range(6):
                m.nodes[0].hierarchy.load(0x2000 * (i + 1), False, done.cb(str(i)))
            m.quiesce()
            results[model] = m.nodes[0].stats.protocol.busy_cycles
        assert results["base"] > results["int512kb"]

    def test_handlers_counted_once_per_dispatch(self):
        m = small_machine("int512kb", n_nodes=1)
        done = Completion(m)
        for i in range(4):
            m.nodes[0].hierarchy.load(0x3000 * (i + 1), False, done.cb(str(i)))
        m.quiesce()
        assert m.nodes[0].stats.protocol.handlers == 4
