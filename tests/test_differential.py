"""Differential testing: event-driven scheduling vs dense polling.

The event-driven scheduler (PR "Event-driven core scheduling") must be
an *observationally invisible* optimisation: every statistic and every
protocol trace event must come out bit-identical to the dense
per-cycle polling reference (``REPRO_DENSE_STEP=1``).  These tests run
the same workload twice — once per mode — and diff:

* ``Machine.collect_stats().to_dict()`` (minus ``skipped_cycles``,
  which is the event mode's own bookkeeping and is 0 under dense), and
* the full :class:`~repro.sim.trace.ProtocolTracer` event stream
  (cycle, node, kind, addr, detail for every coherence event).

Coverage comes from two directions:

* a hypothesis property over random fuzz-stress op lists (seed,
  sharing pattern, model, node count all drawn), exercising
  ``run_ops`` + the event-mode ``quiesce`` drain, and
* full ``run_app`` runs of the tiny preset across all five Table 4
  machine models, exercising the event-mode ``run`` loop end to end
  (idle-cycle fast-forward, per-core skip, all_done gating).
"""

from __future__ import annotations

from dataclasses import asdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models import MODELS
from repro.fuzz.campaign import FUZZ_MACHINE_KWARGS, install_idle_cores
from repro.fuzz.stress import (
    SHARING_PATTERNS,
    StressConfig,
    generate_ops,
    run_ops,
)
from repro.sim.driver import build_machine, run_app
from repro.sim.trace import ProtocolTracer


def _comparable(stats) -> dict:
    d = stats.to_dict()
    # The only legal divergence: dense mode never skips a cycle.
    d.pop("skipped_cycles", None)
    return d


def _trace_stream(tracer: ProtocolTracer) -> list:
    return [asdict(ev) for ev in tracer.events]


# ----------------------------------------------------------------------
# Property: random fuzz-stress traffic, both modes, identical outcome.
# ----------------------------------------------------------------------

def _build_stress_machine(model: str, n_nodes: int, dense: bool):
    machine = build_machine(model, n_nodes=n_nodes, **FUZZ_MACHINE_KWARGS)
    machine.dense_step = dense
    if machine.mp.protocol_engine == "thread":
        install_idle_cores(machine)
    return machine


def _run_stress(model: str, n_nodes: int, ops, max_outstanding: int,
                dense: bool):
    machine = _build_stress_machine(model, n_nodes, dense)
    tracer = ProtocolTracer(machine)
    run_ops(machine, ops, max_outstanding=max_outstanding)
    machine.final_checks()
    return _comparable(machine.collect_stats()), _trace_stream(tracer), machine


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    model=st.sampled_from(MODELS),
    sharing=st.sampled_from(SHARING_PATTERNS),
    n_nodes=st.sampled_from((1, 2)),
    n_ops=st.integers(min_value=20, max_value=120),
)
def test_event_vs_dense_on_random_traffic(seed, model, sharing, n_nodes,
                                          n_ops):
    cfg = StressConfig(n_ops=n_ops, sharing=sharing)
    ops = generate_ops(seed, cfg, n_nodes)

    dense_stats, dense_trace, dense_m = _run_stress(
        model, n_nodes, ops, cfg.max_outstanding, dense=True)
    event_stats, event_trace, event_m = _run_stress(
        model, n_nodes, ops, cfg.max_outstanding, dense=False)

    assert dense_m.skipped_cycles == 0
    assert event_stats == dense_stats
    assert event_trace == dense_trace


# ----------------------------------------------------------------------
# Full applications: the event-mode run loop across all five models.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("model", MODELS)
def test_event_vs_dense_run_app(model, monkeypatch):
    def run(dense: bool):
        if dense:
            monkeypatch.setenv("REPRO_DENSE_STEP", "1")
        else:
            monkeypatch.delenv("REPRO_DENSE_STEP", raising=False)
        return run_app("water", model, n_nodes=1, preset="tiny")

    dense = run(dense=True)
    event = run(dense=False)
    assert dense.skipped_cycles == 0
    assert _comparable(event) == _comparable(dense)


def test_event_vs_dense_run_app_multinode(monkeypatch):
    # One cross-node cell: the regime where fast-forward fires most.
    def run(dense: bool):
        if dense:
            monkeypatch.setenv("REPRO_DENSE_STEP", "1")
        else:
            monkeypatch.delenv("REPRO_DENSE_STEP", raising=False)
        return run_app("fft", "base", n_nodes=2, preset="tiny")

    dense = run(dense=True)
    event = run(dense=False)
    assert event.skipped_cycles > 0, "event mode should skip idle cycles"
    assert _comparable(event) == _comparable(dense)


# ----------------------------------------------------------------------
# App-tier compilation: interpreted KernelBuilder feed vs compiled
# superblocks (REPRO_APP_INTERP=1 vs the default).
# ----------------------------------------------------------------------
#
# Unlike the dense/event differential above, the app compiler claims
# *complete* equality — the compiled feed replays the same µop stream,
# so every field of MachineStats (including ``skipped_cycles``) and the
# protocol trace tail must match bit for bit.

from repro.sim.driver import run_machine  # noqa: E402
from repro.sim.experiments import app_sources, preset_sizes  # noqa: E402

APPS = ("water", "fft", "fftw", "lu", "ocean", "radix")
TRACE_TAIL = 512


def _run_app_traced(app: str, model: str, n_nodes: int, interp: bool):
    import os

    old = os.environ.get("REPRO_APP_INTERP")
    if interp:
        os.environ["REPRO_APP_INTERP"] = "1"
    else:
        os.environ.pop("REPRO_APP_INTERP", None)
    try:
        machine = build_machine(model, n_nodes=n_nodes)
        tracer = ProtocolTracer(machine, ring=True, max_events=TRACE_TAIL)
        sources = app_sources(app, machine, dict(preset_sizes(app, "tiny")))
        stats = run_machine(machine, sources, max_cycles=30_000_000)
        return stats.to_dict(), _trace_stream(tracer)
    finally:
        if old is None:
            os.environ.pop("REPRO_APP_INTERP", None)
        else:
            os.environ["REPRO_APP_INTERP"] = old


@pytest.mark.parametrize("model", MODELS)
def test_interp_vs_compiled_all_apps(model):
    """All six workloads, one model per test id: complete stats +
    trace-tail bit-identity between the two app feeds."""
    for app in APPS:
        interp_stats, interp_trace = _run_app_traced(
            app, model, n_nodes=1, interp=True)
        compiled_stats, compiled_trace = _run_app_traced(
            app, model, n_nodes=1, interp=False)
        assert compiled_stats == interp_stats, f"{app}/{model}: stats diverge"
        assert compiled_trace == interp_trace, f"{app}/{model}: trace diverges"


@settings(max_examples=8, deadline=None)
@given(
    app=st.sampled_from(APPS),
    model=st.sampled_from(MODELS),
    n_nodes=st.sampled_from((1, 2)),
)
def test_interp_vs_compiled_property(app, model, n_nodes):
    """Random (app, model, nodes) cells: the compiled feed is
    observationally invisible, multi-node included."""
    interp_stats, interp_trace = _run_app_traced(
        app, model, n_nodes, interp=True)
    compiled_stats, compiled_trace = _run_app_traced(
        app, model, n_nodes, interp=False)
    assert compiled_stats == interp_stats
    assert compiled_trace == interp_trace


# ----------------------------------------------------------------------
# Fused multi-threaded fast path: ``_step_nt`` vs the generic
# ``step()`` interpreter (REPRO_SMT_INTERP=1 vs the default).
# ----------------------------------------------------------------------
#
# Like the app compiler, the fused SMT path claims *complete* equality:
# it is the same pipeline walked in a flattened order with quiet-stage
# latches, so every MachineStats field (``skipped_cycles`` included —
# both modes run the same event-driven scheduler) and the protocol
# trace tail must be bit-identical.  The path only engages on cores
# with >=2 hardware threads (SMTp's app+protocol pair, or ways>=2
# app-thread cells), so those are the configurations exercised here.

PROTOCOLS = ("smtp-bitvector", "msi", "migratory")


def _run_smt_traced(app: str, model: str, n_nodes: int, ways: int,
                    protocol: str, interp: bool):
    import os

    old = os.environ.get("REPRO_SMT_INTERP")
    if interp:
        os.environ["REPRO_SMT_INTERP"] = "1"
    else:
        os.environ.pop("REPRO_SMT_INTERP", None)
    try:
        machine = build_machine(model, n_nodes=n_nodes, ways=ways,
                                protocol=protocol)
        tracer = ProtocolTracer(machine, ring=True, max_events=TRACE_TAIL)
        sources = app_sources(app, machine, dict(preset_sizes(app, "tiny")))
        stats = run_machine(machine, sources, max_cycles=30_000_000)
        return stats.to_dict(), _trace_stream(tracer)
    finally:
        if old is None:
            os.environ.pop("REPRO_SMT_INTERP", None)
        else:
            os.environ["REPRO_SMT_INTERP"] = old


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_fused_vs_interp_smtp_all_bundles(protocol):
    """SMTp 2-way cells under every registered coherence bundle: full
    stats + trace-tail bit-identity between the fused path and the
    generic interpreter."""
    for app in ("fft", "water"):
        interp_stats, interp_trace = _run_smt_traced(
            app, "smtp", n_nodes=2, ways=2, protocol=protocol, interp=True)
        fused_stats, fused_trace = _run_smt_traced(
            app, "smtp", n_nodes=2, ways=2, protocol=protocol, interp=False)
        assert fused_stats == interp_stats, \
            f"{app}/{protocol}: stats diverge"
        assert fused_trace == interp_trace, \
            f"{app}/{protocol}: trace diverges"


def test_fused_vs_interp_multiway_no_protocol_thread():
    """ways>=2 cells on a model *without* a protocol thread also take
    the fused path (two app threads); same complete-equality claim."""
    interp_stats, interp_trace = _run_smt_traced(
        "ocean", "base", n_nodes=2, ways=2,
        protocol="smtp-bitvector", interp=True)
    fused_stats, fused_trace = _run_smt_traced(
        "ocean", "base", n_nodes=2, ways=2,
        protocol="smtp-bitvector", interp=False)
    assert fused_stats == interp_stats
    assert fused_trace == interp_trace


@settings(max_examples=6, deadline=None)
@given(
    app=st.sampled_from(APPS),
    model=st.sampled_from(("smtp", "base")),
    protocol=st.sampled_from(PROTOCOLS),
    n_nodes=st.sampled_from((1, 2)),
)
def test_fused_vs_interp_property(app, model, protocol, n_nodes):
    """Random (app, model, bundle, nodes) 2-way cells: the fused path
    is observationally invisible wherever it engages."""
    interp_stats, interp_trace = _run_smt_traced(
        app, model, n_nodes, ways=2, protocol=protocol, interp=True)
    fused_stats, fused_trace = _run_smt_traced(
        app, model, n_nodes, ways=2, protocol=protocol, interp=False)
    assert fused_stats == interp_stats
    assert fused_trace == interp_trace


# ----------------------------------------------------------------------
# Active-set scheduling: the per-node wake sets vs dense stepping.
# ----------------------------------------------------------------------


def _run_smt_dense(app: str, protocol: str, n_nodes: int, dense: bool):
    import os

    old = os.environ.get("REPRO_DENSE_STEP")
    if dense:
        os.environ["REPRO_DENSE_STEP"] = "1"
    else:
        os.environ.pop("REPRO_DENSE_STEP", None)
    try:
        machine = build_machine("smtp", n_nodes=n_nodes, ways=2,
                                protocol=protocol)
        tracer = ProtocolTracer(machine, ring=True, max_events=TRACE_TAIL)
        sources = app_sources(app, machine, dict(preset_sizes(app, "tiny")))
        stats = run_machine(machine, sources, max_cycles=30_000_000)
        return stats.to_dict(), _trace_stream(tracer)
    finally:
        if old is None:
            os.environ.pop("REPRO_DENSE_STEP", None)
        else:
            os.environ["REPRO_DENSE_STEP"] = old


@settings(max_examples=4, deadline=None)
@given(
    app=st.sampled_from(("fft", "water", "radix")),
    protocol=st.sampled_from(PROTOCOLS),
)
def test_active_set_vs_dense_congruence_n4(app, protocol):
    """The active-set scheduler (sleeping cores/MCs dropped from the
    per-cycle scan) must never skip a cycle the dense reference
    executes with work in it: at n=4 every architectural statistic and
    the trace tail match REPRO_DENSE_STEP=1 bit for bit, with only
    ``skipped_cycles`` (the event mode's own bookkeeping) exempt."""
    dense_stats, dense_trace = _run_smt_dense(app, protocol, 4, dense=True)
    event_stats, event_trace = _run_smt_dense(app, protocol, 4, dense=False)
    assert dense_stats.pop("skipped_cycles") == 0
    assert event_stats.pop("skipped_cycles") > 0, \
        "active set should be skipping idle cycles at n=4"
    assert event_stats == dense_stats
    assert event_trace == dense_trace
