"""Differential testing: checkpoint/restore vs running straight through.

Machine checkpointing (``repro.sim.checkpoint``) must be
*observationally invisible*: a cell that is suspended to bytes midway
and resumed — in the same process or after a worker kill — must
produce the same :class:`MachineStats` and the same protocol trace
tail as a run that was never interrupted.  As with the event-driven
scheduler and the handler compiler, the contract is enforced
differentially:

* a hypothesis property drawing (app, model, nodes, suspend point)
  and diffing full-run stats against snapshot/restore-midway stats,
* full runs across all five Table 4 machine models, comparing both
  stats and the :class:`ProtocolTracer` event stream from the suspend
  point onward (fresh tracer attached post-restore), and
* the queue integration: a worker killed mid-job (expired lease, live
  checkpoint file) is resumed by a second worker from the checkpoint
  and still reports the uninterrupted stats.

``skipped_cycles`` is exempt, exactly as in ``test_differential``: a
suspend point densely steps a cycle the straight run fast-forwarded
over; every architectural statistic must still match.
"""

from __future__ import annotations

import time
from dataclasses import asdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models import MODELS
from repro.sim import checkpoint as ck
from repro.sim.queue import (
    JobQueue,
    ResultLedger,
    gather_results,
    run_cell_with_checkpoints,
    submit_cells,
    worker_loop,
)
from repro.sim.sweep import SweepCell, pool_map, run_cell
from repro.sim.trace import ProtocolTracer


def _comparable(stats) -> dict:
    d = stats.to_dict()
    # The only legal divergence: how many idle cycles the scheduler
    # happened to fast-forward over (a suspend point steps one densely).
    d.pop("skipped_cycles", None)
    return d


def _finish(machine) -> dict:
    machine.run(30_000_000)
    assert machine.all_done()
    machine.quiesce()
    machine.finish()
    machine.final_checks()
    return _comparable(machine.collect_stats())


def _trace_stream(tracer: ProtocolTracer) -> list:
    return [asdict(ev) for ev in tracer.events]


# ----------------------------------------------------------------------
# Property: suspend anywhere, restore, finish — same outcome.
# ----------------------------------------------------------------------


@settings(max_examples=8, deadline=None)
@given(
    app=st.sampled_from(("water", "fft")),
    model=st.sampled_from(MODELS),
    n_nodes=st.sampled_from((1, 2)),
    pause=st.integers(min_value=100, max_value=5000),
)
def test_snapshot_restore_matches_straight_run(app, model, n_nodes, pause):
    spec = ck.make_spec(app, model, n_nodes=n_nodes, preset="tiny")

    straight = _finish(ck.build_checkpointable(spec))

    m = ck.build_checkpointable(spec)
    m.run(pause)
    resumed = _finish(ck.restore(ck.snapshot(m)))

    assert resumed == straight


# ----------------------------------------------------------------------
# All five machine models: stats AND the trace tail after restore.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("model", MODELS)
def test_snapshot_restore_all_models_with_trace_tail(model):
    spec = ck.make_spec("water", model, n_nodes=2, preset="tiny")
    pause = 1200

    m1 = ck.build_checkpointable(spec)
    m1.run(pause)
    tracer1 = ProtocolTracer(m1)  # events from the suspend point on
    straight = _finish(m1)

    m2 = ck.build_checkpointable(spec)
    m2.run(pause)
    blob = ck.snapshot(m2)
    m3 = ck.restore(blob)
    tracer3 = ProtocolTracer(m3)  # fresh tracer on the restored machine
    resumed = _finish(m3)

    assert m3.cycle == m1.cycle
    assert resumed == straight
    assert _trace_stream(tracer3) == _trace_stream(tracer1)


def test_chunked_run_with_kill_and_reload(tmp_path):
    """run_chunked + save/load across a simulated process death."""
    spec = ck.make_spec("fft", "smtp", n_nodes=2, preset="tiny")

    straight = _finish(ck.build_checkpointable(spec))

    path = tmp_path / "cell.ckpt"
    m = ck.build_checkpointable(spec)
    for _ in range(3):  # a few chunks, checkpointing after each
        m.run(1500)
        if m.all_done():
            break
        ck.save(m, str(path))
    assert path.exists(), "workload finished before any checkpoint"
    m = ck.load(str(path))  # the "killed" worker's successor
    resumed = _comparable(
        ck.run_chunked(m, 30_000_000, every=2000,
                       on_checkpoint=lambda mm: ck.save(mm, str(path)))
    )
    assert resumed == straight


# ----------------------------------------------------------------------
# Guard rails
# ----------------------------------------------------------------------


def test_snapshot_refuses_plain_machines():
    from repro.sim.driver import build_machine

    machine = build_machine("base", n_nodes=1)
    with pytest.raises(ck.CheckpointError, match="checkpoint spec"):
        ck.snapshot(machine)


def test_snapshot_refuses_attached_tracer():
    spec = ck.make_spec("water", "base", n_nodes=1, preset="tiny")
    machine = ck.build_checkpointable(spec)
    ck.snapshot(machine)  # fine before the tracer
    ProtocolTracer(machine)
    with pytest.raises(ck.CheckpointError, match="tracer"):
        ck.snapshot(machine)


def test_restore_refuses_other_compiler_version(monkeypatch):
    spec = ck.make_spec("water", "base", n_nodes=1, preset="tiny")
    machine = ck.build_checkpointable(spec)
    machine.run(500)
    blob = ck.snapshot(machine)
    from repro.protocol import compile as pcompile

    monkeypatch.setattr(pcompile, "COMPILER_VERSION",
                        pcompile.COMPILER_VERSION + 1)
    with pytest.raises(ck.CheckpointError, match="compiler"):
        ck.restore(blob)


def test_escape_hatch_disables_checkpointing(monkeypatch, tmp_path):
    monkeypatch.setenv(ck.NO_CKPT_ENV, "1")
    cell = SweepCell.make("water", "base", n_nodes=1, preset="tiny")
    path = tmp_path / "never.ckpt"
    result = run_cell_with_checkpoints(cell, path, every=500)
    assert result.ok
    assert not path.exists()


def test_unsnapshottable_flags_fall_back_to_straight_run(tmp_path):
    # check_coherence attaches closure hooks at Machine construction,
    # so the checkpointed runner must degrade to the plain one.
    cell = SweepCell.make(
        "water", "base", n_nodes=1, preset="tiny", check_coherence=True
    )
    path = tmp_path / "blocked.ckpt"
    result = run_cell_with_checkpoints(cell, path, every=500)
    assert result.ok
    straight = run_cell(cell)
    assert {k: v for k, v in result.stats.items() if k != "skipped_cycles"} \
        == {k: v for k, v in straight.stats.items() if k != "skipped_cycles"}


# ----------------------------------------------------------------------
# The persistent queue
# ----------------------------------------------------------------------


def test_queue_lease_lifecycle(tmp_path):
    q = JobQueue(tmp_path / "q", lease_s=0.05)
    assert q.submit("a", {"n": 1})
    assert not q.submit("a", {"n": 2}), "submit must be idempotent"

    job = q.claim("w1")
    assert job["id"] == "a" and job["attempts"] == 1
    assert q.claim("w2") is None, "leased job must not be double-claimed"
    assert q.heartbeat("a", "w1")
    assert not q.heartbeat("a", "w2"), "only the lease holder heartbeats"

    time.sleep(0.08)  # lease expires
    stolen = q.claim("w2")
    assert stolen is not None and stolen["attempts"] == 2
    assert not q.heartbeat("a", "w1"), "original worker lost the lease"
    assert q.complete("a", "w2", {"ok": True})
    assert q.counts() == {"pending": 0, "leased": 0, "done": 1, "failed": 0}


def test_queue_exhausts_attempts(tmp_path):
    q = JobQueue(tmp_path / "q", lease_s=0.01)
    q.submit("a", {}, max_attempts=2)
    for _ in range(2):
        assert q.claim("w") is not None
        time.sleep(0.03)
    assert q.claim("w") is None
    assert q.get("a")["state"] == "failed"
    assert q.all_done()


def test_killed_worker_resumes_from_checkpoint(tmp_path):
    """The acceptance criterion: a killed sweep worker's job is
    reclaimed and resumed from its last checkpoint to the same final
    stats an uninterrupted run produces."""
    cell = SweepCell.make("fft", "smtp", n_nodes=2, preset="tiny")
    straight = run_cell(cell)

    q = JobQueue(tmp_path / "q", lease_s=0.05)
    submit_cells(q, [cell])

    # Worker 1 claims the job, checkpoints midway, then "dies" (no
    # complete, no further heartbeats).
    job = q.claim("victim")
    spec = ck.make_spec(cell.app, cell.model, n_nodes=cell.n_nodes,
                        ways=cell.ways, freq_ghz=cell.freq_ghz,
                        preset=cell.preset)
    m = ck.build_checkpointable(spec)
    m.run(2000)
    assert not m.all_done()
    ck.save(m, str(q.checkpoint_path(job["id"])))
    time.sleep(0.08)  # the victim's lease expires

    ran = worker_loop(q, worker_id="rescuer", checkpoint_every=3000)
    assert ran == 1
    record = q.get(job["id"])
    assert record["state"] == "done"
    assert record["attempts"] == 2, "resume burned the reclaim attempt"
    assert not q.checkpoint_path(job["id"]).exists(), \
        "checkpoint cleaned up after completion"

    (result,) = gather_results(q, [cell])
    assert result.ok
    assert {k: v for k, v in result.stats.items() if k != "skipped_cycles"} \
        == {k: v for k, v in straight.stats.items() if k != "skipped_cycles"}


# ----------------------------------------------------------------------
# pool_map durability ledger
# ----------------------------------------------------------------------


def _double(payload):
    return {"value": payload * 2}


def test_pool_map_ledger_replays_finished_items(tmp_path):
    ledger = ResultLedger(tmp_path / "ledger")
    pending = [("a", 1), ("b", 2)]

    seen = {}
    pool_map(pending, _double, jobs=2,
             on_done=lambda i, p, o, e, a: seen.update({i: (o, a)}),
             ledger=ledger)
    assert seen["a"][0] == {"value": 2} and seen["a"][1] == 1

    replayed = {}
    pool_map(pending, _double, jobs=2,
             on_done=lambda i, p, o, e, a: replayed.update({i: (o, a)}),
             ledger=ledger)
    assert replayed == {
        "a": ({"value": 2}, 0),
        "b": ({"value": 4}, 0),
    }, "second run must replay from the ledger (attempts=0, no worker)"


def test_campaign_ledger_resumes_without_refuzzing(tmp_path, monkeypatch):
    from repro.fuzz import campaign as fc

    cells = fc.make_cells([11, 12], n_nodes=1, max_cycles=300_000)
    ledger = ResultLedger(tmp_path / "ledger")
    first = fc.run_campaign(cells, jobs=0, out_dir=tmp_path / "art",
                            shrink=False, ledger=ledger)
    assert all(r.ok for r in first)

    def boom(*a, **k):  # a replayed campaign must not fuzz anything
        raise AssertionError("run_fuzz_cell called on a fully-recorded run")

    monkeypatch.setattr(fc, "run_fuzz_cell", boom)
    second = fc.run_campaign(cells, jobs=0, out_dir=tmp_path / "art",
                             shrink=False, ledger=ledger)
    assert [r.to_dict() for r in second] == [r.to_dict() for r in first]


# ----------------------------------------------------------------------
# App-tier compilation: suspend mid-superblock, both feed modes.
# ----------------------------------------------------------------------


def _compiled_programs(machine):
    from repro.apps.compile import CompiledProgram

    return [
        t.source
        for core in machine._cores
        for t in core.threads
        if isinstance(t.source, CompiledProgram)
    ]


def _pause_mid_superblock(machine, limit: int = 20_000) -> None:
    """Step until some compiled program's fetch cursor sits strictly
    inside a decoded superblock (consumed a prefix, more µops pending)."""
    while machine.cycle < limit:
        machine.run(machine.cycle + 50)
        if machine.all_done():
            break
        for prog in _compiled_programs(machine):
            if 0 < prog.pos < len(prog.k.buffer):
                return
    raise AssertionError("never caught a program mid-superblock")


@pytest.mark.parametrize("interp", (False, True),
                         ids=("compiled", "interp"))
def test_snapshot_mid_superblock_restores_identically(interp, monkeypatch):
    """Snapshot with the superblock cursor mid-buffer; the regrafted
    generator + cursor state must finish with the stats of an
    uninterrupted run — with compilation on and (trivially, the cursor
    then lives in the reference buffer) off."""
    if interp:
        monkeypatch.setenv("REPRO_APP_INTERP", "1")
    else:
        monkeypatch.delenv("REPRO_APP_INTERP", raising=False)
    spec = ck.make_spec("ocean", "smtp", n_nodes=1, preset="tiny")

    straight = _finish(ck.build_checkpointable(spec))

    m = ck.build_checkpointable(spec)
    if interp:
        m.run(1200)  # no cursor to catch; any mid-run point will do
        assert not _compiled_programs(m)
    else:
        _pause_mid_superblock(m)
        assert any(0 < p.pos < len(p.k.buffer) for p in _compiled_programs(m))
    resumed = _finish(ck.restore(ck.snapshot(m)))

    assert resumed == straight


def test_snapshot_restore_smtp_fast_path_all_bundles(monkeypatch):
    """SMTp 2-way cells under the fused fast path: suspend mid-run and
    resume, once per registered coherence bundle.  The restored core
    must rebuild its quiet-stage latches (``_cm_stall``/``_fetch_idle``
    are not snapshot state — they are caches that re-derive) and still
    land on the uninterrupted stats."""
    monkeypatch.delenv("REPRO_SMT_INTERP", raising=False)
    for protocol in ("smtp-bitvector", "msi", "migratory"):
        spec = ck.make_spec("fft", "smtp", n_nodes=2, ways=2,
                            preset="tiny", protocol=protocol)

        straight = _finish(ck.build_checkpointable(spec))

        m = ck.build_checkpointable(spec)
        m.run(1500)
        assert not m.all_done()
        resumed = _finish(ck.restore(ck.snapshot(m)))

        assert resumed == straight, f"{protocol}: resumed run diverged"


def test_snapshot_restore_fast_path_matches_interp_mode(monkeypatch):
    """Four-way diff on a multi-way cell: straight/restored under the
    fused path and under REPRO_SMT_INTERP=1 all agree."""
    spec = ck.make_spec("water", "smtp", n_nodes=2, ways=2, preset="tiny")
    outcomes = {}
    for interp in (False, True):
        if interp:
            monkeypatch.setenv("REPRO_SMT_INTERP", "1")
        else:
            monkeypatch.delenv("REPRO_SMT_INTERP", raising=False)
        straight = _finish(ck.build_checkpointable(spec))
        m = ck.build_checkpointable(spec)
        m.run(1100)
        resumed = _finish(ck.restore(ck.snapshot(m)))
        outcomes[("straight", interp)] = straight
        outcomes[("resumed", interp)] = resumed
    monkeypatch.delenv("REPRO_SMT_INTERP", raising=False)
    baseline = outcomes[("straight", False)]
    for key, stats in outcomes.items():
        assert stats == baseline, f"{key} diverged"


def test_interp_and_compiled_checkpoint_runs_agree(monkeypatch):
    """The four-way diff: straight/restored × interp/compiled all land
    on one MachineStats."""
    spec = ck.make_spec("fft", "base", n_nodes=1, preset="tiny")
    outcomes = {}
    for interp in (False, True):
        if interp:
            monkeypatch.setenv("REPRO_APP_INTERP", "1")
        else:
            monkeypatch.delenv("REPRO_APP_INTERP", raising=False)
        straight = _finish(ck.build_checkpointable(spec))
        m = ck.build_checkpointable(spec)
        m.run(900)
        resumed = _finish(ck.restore(ck.snapshot(m)))
        outcomes[("straight", interp)] = straight
        outcomes[("resumed", interp)] = resumed
    monkeypatch.delenv("REPRO_APP_INTERP", raising=False)
    baseline = outcomes[("straight", False)]
    for key, stats in outcomes.items():
        assert stats == baseline, f"{key} diverged"
