"""Protocol tracer: event capture, filtering, rendering."""

from repro.sim.trace import ProtocolTracer
from tests.conftest import Completion, small_machine


def test_traces_full_three_hop_flow():
    m = small_machine("base", n_nodes=2)
    addr = 0x3000
    tracer = ProtocolTracer(m, line=addr)
    done = Completion(m)
    m.nodes[1].hierarchy.store(addr, False, 5, done.cb("w"))
    m.quiesce()
    m.nodes[0].hierarchy.load(addr, False, done.cb("r"))
    m.quiesce()
    kinds = [e.kind for e in tracer.events]
    assert "dispatch" in kinds and "send" in kinds and "refill" in kinds
    assert tracer.count("probe") >= 1  # the downgrade intervention
    text = tracer.render()
    assert "INT_SHARED" in text or "GETX" in text


def test_line_filter_excludes_other_lines():
    m = small_machine("base", n_nodes=2)
    tracer = ProtocolTracer(m, line=0x3000)
    done = Completion(m)
    m.nodes[0].hierarchy.load(0x9000, False, done.cb("x"))
    m.quiesce()
    assert tracer.count() == 0


def test_unfiltered_sees_everything():
    m = small_machine("base", n_nodes=2)
    tracer = ProtocolTracer(m)
    done = Completion(m)
    m.nodes[0].hierarchy.load(0x9000, False, done.cb("x"))
    m.nodes[1].hierarchy.load(0x9000, False, done.cb("y"))
    m.quiesce()
    assert tracer.count("dispatch") >= 2
    assert "GET" in tracer.render(limit=5) or tracer.count() > 0


def test_max_events_cap():
    m = small_machine("base", n_nodes=2)
    tracer = ProtocolTracer(m, max_events=3)
    done = Completion(m)
    for i in range(5):
        m.nodes[0].hierarchy.load(0x9000 + i * 0x1000, False, done.cb(str(i)))
        m.quiesce()
    assert tracer.count() == 3
