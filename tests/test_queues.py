"""ReservedPool / BoundedQueue / DualQueue semantics, incl. the
reserved-slot deadlock-avoidance rule, with property-based checks."""

import pytest
from hypothesis import given, strategies as st

from repro.common.queues import BoundedQueue, DualQueue, ReservedPool


class TestReservedPool:
    def test_app_cannot_take_reserved_slot(self):
        p = ReservedPool("x", total=4, reserved=1)
        assert p.acquire(False)
        assert p.acquire(False)
        assert p.acquire(False)
        assert not p.acquire(False)  # slot 4 is reserved
        assert p.acquire(True)  # protocol can take it

    def test_protocol_can_use_all(self):
        p = ReservedPool("x", total=3, reserved=1)
        for _ in range(3):
            assert p.acquire(True)
        assert not p.acquire(True)

    def test_release_restores_capacity(self):
        p = ReservedPool("x", total=2, reserved=1)
        assert p.acquire(False)
        assert not p.acquire(False)
        p.release(False)
        assert p.acquire(False)

    def test_release_underflow_raises(self):
        p = ReservedPool("x", total=2)
        with pytest.raises(ValueError):
            p.release(False)
        with pytest.raises(ValueError):
            p.release(True)

    def test_peak_tracking(self):
        p = ReservedPool("x", total=8, reserved=1)
        p.acquire(True)
        p.acquire(True)
        p.release(True)
        p.acquire(True)
        assert p.proto_peak == 2

    def test_reserved_larger_than_total_rejected(self):
        with pytest.raises(ValueError):
            ReservedPool("x", total=1, reserved=2)

    @given(
        st.lists(
            st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=200
        )
    )
    def test_invariants_under_random_ops(self, ops):
        """Occupancy never exceeds total; app never intrudes on the
        reserve; counters never go negative."""
        p = ReservedPool("x", total=6, reserved=2)
        for protocol, is_acquire in ops:
            if is_acquire:
                p.acquire(protocol)
            else:
                try:
                    p.release(protocol)
                except ValueError:
                    pass
            assert 0 <= p.used <= p.total
            assert p.app_used <= p.total - p.reserved
            assert p.app_used >= 0 and p.proto_used >= 0


class TestBoundedQueue:
    def test_fifo_order(self):
        q = BoundedQueue("q", 3)
        for i in range(3):
            assert q.push(i)
        assert not q.push(99)
        assert [q.pop() for _ in range(3)] == [0, 1, 2]

    def test_peek_does_not_remove(self):
        q = BoundedQueue("q", 2)
        q.push("a")
        assert q.peek() == "a"
        assert len(q) == 1

    def test_empty_peek(self):
        assert BoundedQueue("q", 1).peek() is None


class TestDualQueue:
    def test_app_blocked_by_reservation(self):
        q = DualQueue("q", capacity=3, reserved=1)
        assert q.push("a1", False)
        assert q.push("a2", False)
        assert not q.push("a3", False)
        assert q.push("p1", True)

    def test_protocol_uses_full_capacity(self):
        q = DualQueue("q", capacity=2, reserved=1)
        assert q.push("p1", True)
        assert q.push("p2", True)
        assert not q.push("p3", True)

    def test_drain_alternates_priority(self):
        q = DualQueue("q", capacity=8, reserved=1)
        q.push("a1", False)
        q.push("p1", True)
        first = q.drain(2)
        q.push("a2", False)
        q.push("p2", True)
        second = q.drain(2)
        # The section drained first flips between consecutive cycles.
        first_was_proto = first[0].startswith("p")
        second_was_proto = second[0].startswith("p")
        assert first_was_proto != second_was_proto

    def test_drain_is_fifo_within_section(self):
        q = DualQueue("q", capacity=8)
        for i in range(4):
            q.push(i, False)
        assert q.drain(4) == [0, 1, 2, 3]

    @given(st.lists(st.booleans(), min_size=1, max_size=50))
    def test_capacity_never_exceeded(self, pushes):
        q = DualQueue("q", capacity=5, reserved=2)
        for protocol in pushes:
            q.push(object(), protocol)
            assert len(q) <= 5
            assert len(q.app) <= 3
