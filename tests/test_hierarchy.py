"""Cache hierarchy + memory controller + protocol, exercised through
the full machine (memory-side integration; no cores installed)."""

import pytest

from repro.caches.coherence import CacheState
from repro.caches.hierarchy import BLOCKED, HIT, MISS, PROTO_SPACE_BIT
from tests.conftest import Completion, small_machine


class TestLocalMiss:
    def test_load_miss_fills_exclusive(self, machine2):
        m = machine2
        done = Completion(m)
        kind, *_ = m.nodes[0].hierarchy.load(0x1000, False, done.cb("ld"))
        assert kind == MISS
        m.quiesce()
        assert "ld" in done
        line = m.nodes[0].hierarchy.l2.lookup(0x1000)
        assert line.state is CacheState.EXCLUSIVE  # eager-exclusive

    def test_second_load_hits(self, machine2):
        m = machine2
        done = Completion(m)
        m.nodes[0].hierarchy.load(0x1000, False, done.cb("a"))
        m.quiesce()
        kind, lat, value = m.nodes[0].hierarchy.load(0x1000, False, done.cb("b"))
        assert kind == HIT
        assert lat <= m.mp.proc.l1d.hit_latency + m.mp.proc.tlb_miss_penalty

    def test_store_miss_getx(self, machine2):
        m = machine2
        done = Completion(m)
        m.nodes[0].hierarchy.store(0x2000, False, 77, done.cb("st"))
        m.quiesce()
        line = m.nodes[0].hierarchy.l2.lookup(0x2000)
        assert line.state is CacheState.MODIFIED
        assert line.version == 1
        assert m.words[0x2000] == 77

    def test_load_value_comes_from_word_store(self, machine2):
        m = machine2
        done = Completion(m)
        m.nodes[0].hierarchy.store(0x2000, False, 55, done.cb("st"))
        m.quiesce()
        m.nodes[1].hierarchy.load(0x2000, False, done.cb("ld"))
        m.quiesce()
        assert done.value("ld") == 55

    def test_misses_to_same_line_merge(self, machine2):
        m = machine2
        done = Completion(m)
        h = m.nodes[0].hierarchy
        h.load(0x3000, False, done.cb("a"))
        h.load(0x3008, False, done.cb("b"))
        assert len(h.mshrs) == 1
        m.quiesce()
        assert "a" in done and "b" in done

    def test_mshr_exhaustion_blocks(self, machine2):
        m = machine2
        h = m.nodes[0].hierarchy
        for i in range(16):
            kind, *_ = h.load(0x10000 + i * 128, False, lambda v: None)
            assert kind == MISS
        kind, *_ = h.load(0x90000, False, lambda v: None)
        assert kind == BLOCKED
        m.quiesce()

    def test_prefetch_installs_line(self, machine2):
        m = machine2
        m.nodes[0].hierarchy.prefetch(0x4000, exclusive=False)
        m.quiesce()
        assert m.nodes[0].hierarchy.l2.lookup(0x4000) is not None

    def test_prefetch_exclusive_grants_ownership(self, machine2):
        m = machine2
        m.nodes[0].hierarchy.prefetch(0x4000, exclusive=True)
        m.quiesce()
        assert m.nodes[0].hierarchy.l2.lookup(0x4000).state.writable


class TestSharing:
    def _share(self, m, addr):
        done = Completion(m)
        m.nodes[0].hierarchy.store(addr, False, 1, done.cb("w"))
        m.quiesce()
        m.nodes[1].hierarchy.load(addr, False, done.cb("r"))
        m.quiesce()
        return done

    def test_three_hop_read_downgrades_owner(self, machine2):
        m = machine2
        addr = 0x5000
        self._share(m, addr)
        assert m.nodes[0].hierarchy.l2.lookup(addr).state is CacheState.SHARED
        assert m.nodes[1].hierarchy.l2.lookup(addr).state is CacheState.SHARED

    def test_upgrade_invalidates_sharer(self, machine2):
        m = machine2
        addr = 0x5000
        done = self._share(m, addr)
        m.nodes[1].hierarchy.store(addr, False, 9, done.cb("w2"))
        m.quiesce()
        assert m.nodes[0].hierarchy.l2.lookup(addr) is None
        assert m.nodes[1].hierarchy.l2.lookup(addr).state is CacheState.MODIFIED

    def test_ownership_transfer_dirty(self, machine2):
        m = machine2
        addr = 0x6000
        done = Completion(m)
        m.nodes[0].hierarchy.store(addr, False, 5, done.cb("a"))
        m.quiesce()
        m.nodes[1].hierarchy.store(addr, False, 6, done.cb("b"))
        m.quiesce()
        assert m.nodes[0].hierarchy.l2.lookup(addr) is None
        line = m.nodes[1].hierarchy.l2.lookup(addr)
        assert line.state is CacheState.MODIFIED
        assert line.version == 2
        assert m.words[addr] == 6

    def test_atomic_rmw(self, machine2):
        m = machine2
        addr = 0x7000
        done = Completion(m)
        m.nodes[0].hierarchy.atomic(addr, "tas", 0, done.cb("t0"))
        m.quiesce()
        m.nodes[1].hierarchy.atomic(addr, "tas", 0, done.cb("t1"))
        m.quiesce()
        assert done.value("t0") == 0  # won the lock
        assert done.value("t1") == 1  # saw it held

    def test_atomic_fai(self, machine2):
        m = machine2
        addr = 0x7100
        done = Completion(m)
        for n in (0, 1, 0):
            m.nodes[n].hierarchy.atomic(addr, "fai", 1, done.cb(f"f{n}"))
            m.quiesce()
        assert m.words[addr] == 3

    def test_audit_passes(self, machine2):
        m = machine2
        self._share(m, 0x5000)
        m.final_checks()


class TestProtocolSpace:
    def test_protocol_store_and_load(self, smtp2):
        m = smtp2
        h = m.nodes[0].hierarchy
        addr = PROTO_SPACE_BIT | 0x1000
        done = Completion(m)
        kind, *_ = h.store(addr, True, None, done.cb("st"))
        m.quiesce()
        kind2, *_ = h.load(addr, True, done.cb("ld"))
        m.quiesce()
        # Protocol space is node-private: no coherence traffic.
        assert m.nodes[0].stats.protocol.handlers == 0

    def test_protocol_conflict_goes_to_bypass(self, smtp2):
        m = smtp2
        h = m.nodes[0].hierarchy
        # Start an application miss pinning an L2 set.
        app_addr = 0x8000
        h.load(app_addr, False, lambda v: None)
        # A protocol line mapping to the same set must bypass.
        proto_addr = PROTO_SPACE_BIT | app_addr
        assert h.l2.set_index(proto_addr) == h.l2.set_index(app_addr)
        h.load(proto_addr, True, lambda v: None)
        m.quiesce()
        assert m.nodes[0].stats.bypass_allocations >= 1
        assert h.l2bypass.lookup(proto_addr) is not None


class TestInstructionFetch:
    def test_ifetch_miss_then_hit(self, machine2):
        m = machine2
        h = m.nodes[0].hierarchy
        done = []
        kind = h.ifetch(0x400000, False, lambda: done.append(1))
        assert kind[0] == MISS
        m.quiesce()
        assert done
        kind = h.ifetch(0x400004, False, lambda: None)
        assert kind[0] == HIT

    def test_icache_lines_do_not_alias_data(self, machine2):
        m = machine2
        h = m.nodes[0].hierarchy
        h.ifetch(0x1000, False, lambda: None)
        m.quiesce()
        # The data line 0x1000 is still a miss (separate code space).
        kind, *_ = h.load(0x1000, False, lambda v: None)
        assert kind == MISS
        m.quiesce()


class TestEviction:
    def test_capacity_eviction_writes_back(self, machine2):
        m = machine2
        h = m.nodes[0].hierarchy
        done = Completion(m)
        n_sets = h.l2.params.n_sets
        line = h.l2.params.line_bytes
        assoc = h.l2.params.assoc
        # Fill one set beyond associativity with dirty lines.
        for i in range(assoc + 1):
            addr = i * n_sets * line  # same set index
            h.store(addr, False, i, done.cb(f"s{i}"))
            m.quiesce()
        assert m.nodes[0].stats.l2.writebacks >= 1
        # The evicted line's version reached home memory.
        assert m.nodes[0].memory_versions.get(0, 0) >= 1
        m.final_checks()
