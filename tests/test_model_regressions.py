"""The five historical seed races, re-detected with their fixes reverted.

DESIGN.md section 6: the model pass found five genuine races in the
seed protocol, and every fix ships in ``protocol/handlers.py``.
``repro.analyze.regressions`` rebuilds, per race, a handler table with
just that fix reverted.  This harness runs the *reduced* checker —
symmetry canonicalization plus ample-set pruning, exactly the
production configuration — over each table and asserts the
counterexample is still found at n <= 3: the reductions do not mask
any bug this repo has actually shipped a fix for.

The budgets come from ``SEED_RACES`` (measured minima), so the whole
suite explores a few thousand states per race rather than re-running
deep sweeps.
"""

import pytest

from repro.analyze.model import check_model
from repro.analyze.regressions import SEED_RACES, find_race


@pytest.mark.parametrize("race", SEED_RACES, ids=lambda r: r.key)
def test_reduced_checker_refinds_each_seed_race(race):
    result = check_model(
        n_nodes=race.n_nodes, loads=race.loads, stores=race.stores,
        n_lines=race.n_lines, max_states=race.max_states,
        table=race.build_table(), jobs=1,
    )
    assert result.violation is not None, (
        f"reduced checker missed the reverted race {race.key!r} "
        f"({race.title}; fix: {race.fix})"
    )
    assert result.violation.code in race.expect_codes, result.violation
    assert result.violation.trace, "counterexample must carry a trace"
    assert race.n_nodes <= 3


def test_registry_covers_the_five_design_races():
    assert len(SEED_RACES) == 5
    assert {r.key for r in SEED_RACES} == {
        "put-overtakes-xfer",
        "upgrade-erases-waiter",
        "stale-int-after-wb",
        "wb-ack-no-complete",
        "stale-xfer-aba",
    }
    assert find_race("put-overtakes-xfer") is SEED_RACES[0]
    assert find_race("nonexistent") is None


def test_reverted_tables_differ_from_shipped_only_in_named_handlers():
    from repro.protocol.handlers import build_handler_table

    shipped = build_handler_table()
    for race in SEED_RACES:
        table = race.build_table()
        changed = {
            name for name, handler in table.by_name.items()
            if name in shipped
            and [i.op for i in handler.instrs]
            != [i.op for i in shipped[name].instrs]
        }
        assert changed, race.key
        # Every revert is surgical: h_* handlers named in the fix only.
        assert changed <= {
            "h_put", "h_upgrade", "h_reply_wb_ack",
            "h_get", "h_getx", "h_xfer",
        }, (race.key, changed)
