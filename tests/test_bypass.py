"""Bypass buffers: fully-associative LRU, protocol-only line storage."""

from hypothesis import given, strategies as st

from repro.caches.bypass import BypassBuffer


def make():
    return BypassBuffer("t", n_lines=4, line_bytes=128)


class TestBypass:
    def test_miss_then_hit(self):
        b = make()
        assert b.lookup(0x100) is None
        b.install(0x100, version=2)
        assert b.lookup(0x100) == 2
        assert b.lookup(0x17F) == 2  # same line
        assert b.lookup(0x180) is None

    def test_lru_eviction_returns_victim(self):
        b = make()
        for i in range(4):
            b.install(i * 128, version=i)
        b.lookup(0)  # make line 0 MRU
        evicted = b.install(4 * 128, version=9)
        assert evicted is not None
        assert evicted[0] == 1 * 128  # LRU victim

    def test_install_existing_updates_in_place(self):
        b = make()
        b.install(0x100, version=1)
        assert b.install(0x100, version=5) is None
        assert b.lookup(0x100) == 5
        assert len(b) == 1

    def test_write_present_line(self):
        b = make()
        b.install(0x100, version=1)
        assert b.write(0x108, 7)
        assert b.lookup(0x100) == 7

    def test_write_absent_returns_false(self):
        assert not make().write(0x100, 1)

    def test_evict_returns_dirty_state(self):
        b = make()
        b.install(0x100, version=3, dirty=True)
        assert b.evict(0x100) == (3, True)
        assert b.evict(0x100) is None

    def test_drain_empties(self):
        b = make()
        b.install(0x100, 1)
        b.install(0x200, 2, dirty=True)
        out = b.drain()
        assert out == {0x100: (1, False), 0x200: (2, True)}
        assert len(b) == 0

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=100))
    def test_capacity_bound(self, lines):
        b = make()
        for l in lines:
            b.install(l * 128, version=l)
            assert len(b) <= 4
