"""Property tests for the bookkeeping structures the sanitizer leans on.

Driven by Hypothesis: random operation sequences against
:class:`~repro.caches.mshr.MSHRFile` and
:class:`~repro.memctrl.dircache.DirectMappedCache`, checking the
invariants the coherence sanitizer assumes — entries are never lost or
aliased, class accounting never drifts, capacities are never exceeded.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.mshr import MissKind, MSHRFile
from repro.memctrl.dircache import DirectMappedCache, PerfectCache

LINES = st.integers(min_value=0, max_value=31).map(lambda i: 0x1000 + i * 128)

MSHR_OPS = st.lists(
    st.tuples(
        st.sampled_from(["alloc", "free", "data", "ack"]),
        LINES,
        st.sampled_from(list(MissKind)),
        st.booleans(),  # protocol class
        st.booleans(),  # store class
    ),
    max_size=120,
)


class TestMSHRFileProperties:
    @given(ops=MSHR_OPS)
    @settings(max_examples=60, deadline=None)
    def test_accounting_never_drifts(self, ops):
        mshrs = MSHRFile(app_entries=4, protocol_reserved=1)
        live = {}
        for op, la, kind, protocol, store in ops:
            if op == "alloc" and la not in live:
                entry = mshrs.allocate(la, kind, protocol=protocol, store=store)
                if entry is not None:
                    live[la] = entry
            elif op == "free" and la in live:
                mshrs.free(la)
                del live[la]
            elif op == "data" and la in live:
                mshrs.data_reply(la, version=1, writable=True, acks=1)
            elif op == "ack":
                mshrs.inval_ack(la)  # must tolerate misses (None)

            # Entries are never lost or aliased...
            assert set(mshrs.entries) == set(live)
            assert all(mshrs.get(a) is e for a, e in live.items())
            # ...capacity is never exceeded...
            assert len(mshrs) <= mshrs.total_capacity
            # ...and the class counters cover the map exactly (the
            # sanitizer's occupancy check relies on this equality).
            used = mshrs._app_used + mshrs._store_used + mshrs._proto_used
            assert used == len(mshrs.entries)

    @given(ops=MSHR_OPS)
    @settings(max_examples=30, deadline=None)
    def test_free_returns_every_merged_waiter(self, ops):
        mshrs = MSHRFile(app_entries=4)
        waiters = {}
        for op, la, kind, _protocol, _store in ops:
            if op == "alloc":
                entry = mshrs.get(la)
                if entry is None:
                    if mshrs.allocate(la, kind) is not None:
                        waiters[la] = 0
                else:
                    mshrs.merge(entry, lambda v: None, kind.wants_write)
                    waiters[la] += 1
            elif op == "free" and mshrs.get(la) is not None:
                returned = mshrs.free(la)
                assert len(returned) == waiters.pop(la)


class TestDirectoryCacheProperties:
    @given(
        addrs=st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=200),
        size=st.sampled_from([256, 1024, 64 * 1024]),
    )
    @settings(max_examples=60, deadline=None)
    def test_bookkeeping_and_determinism(self, addrs, size):
        cache = DirectMappedCache(size)
        replay = DirectMappedCache(size)
        for addr in addrs:
            hit = cache.access(addr)
            # Immediately re-touching the same address always hits, and
            # an identical cache replays identical outcomes.
            assert cache.access(addr) is True
            assert replay.access(addr) is hit
            replay.access(addr)
        assert cache.hits + cache.misses == 2 * len(addrs)
        # The tag store can never outgrow the geometry.
        assert len(cache._tags) <= cache.n_lines

    @given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_perfect_cache_always_hits(self, addrs):
        cache = PerfectCache()
        assert all(cache.access(a) for a in addrs)
        assert cache.misses == 0 and cache.hits == len(addrs)
