"""Protocol ISA: assembler, instruction metadata, semantics."""

import pytest

from repro.common.errors import ConfigError, ProtocolError
from repro.protocol import semantics
from repro.protocol.isa import (
    ADDR,
    HDR,
    T0,
    T1,
    ZERO,
    HandlerBuilder,
    HandlerTable,
    PInstr,
    POp,
)


class TestBuilder:
    def test_requires_done(self):
        h = HandlerBuilder("x")
        h.addi(T0, ZERO, 1)
        with pytest.raises(ConfigError):
            h.build()

    def test_labels_resolve(self):
        h = HandlerBuilder("x")
        h.beqz(T0, "end")
        h.addi(T0, T0, 1)
        h.label("end")
        h.done()
        built = h.build()
        assert built.instrs[0].target == 2

    def test_undefined_label_raises(self):
        h = HandlerBuilder("x")
        h.beqz(T0, "nowhere")
        h.done()
        with pytest.raises(ConfigError):
            h.build()

    def test_duplicate_label_raises(self):
        h = HandlerBuilder("x")
        h.label("a")
        with pytest.raises(ConfigError):
            h.label("a")

    def test_ends_with_switch_ldctxt(self):
        h = HandlerBuilder("x")
        h.done()
        built = h.build()
        assert built.instrs[-2].op is POp.SWITCH
        assert built.instrs[-1].op is POp.LDCTXT


class TestMetadata:
    def test_alu_reads_writes(self):
        i = PInstr(POp.ADD, rd=T0, rs1=T1, rs2=ADDR)
        assert i.reads() == [T1, ADDR]
        assert i.writes() == T0

    def test_store_reads_value_and_base(self):
        i = PInstr(POp.ST, rd=T0, rs1=T1, imm=4)
        assert i.reads() == [T0, T1]
        assert i.writes() is None

    def test_load_writes_dest(self):
        i = PInstr(POp.LD, rd=T0, rs1=T1)
        assert i.writes() == T0

    def test_zero_dest_writes_nothing(self):
        i = PInstr(POp.ADD, rd=ZERO, rs1=T1, rs2=T0)
        assert i.writes() is None

    def test_switch_writes_hdr_ldctxt_writes_addr(self):
        assert PInstr(POp.SWITCH).writes() == HDR
        assert PInstr(POp.LDCTXT).writes() == ADDR

    def test_branch_flags(self):
        assert PInstr(POp.BEQZ, rs1=T0).is_branch
        assert PInstr(POp.SENDH, rs1=T0).is_uncached
        assert PInstr(POp.LD, rd=T0, rs1=T1).is_memory


class TestSemantics:
    def run_one(self, instr, regs=None, pmem=None):
        regs = regs or [0] * 32
        pmem = pmem or {}
        return semantics.step(instr, 0, regs, lambda a: pmem.get(a, 0))

    @pytest.mark.parametrize(
        "op,a,b,expect",
        [
            (POp.ADD, 3, 4, 7),
            (POp.SUB, 10, 4, 6),
            (POp.AND, 0b1100, 0b1010, 0b1000),
            (POp.OR, 0b1100, 0b1010, 0b1110),
            (POp.XOR, 0b1100, 0b1010, 0b0110),
            (POp.SLL, 1, 5, 32),
            (POp.SRL, 32, 5, 1),
            (POp.SEQ, 7, 7, 1),
            (POp.SEQ, 7, 8, 0),
            (POp.SLT, 3, 9, 1),
            (POp.POPC, 0b1011, 0, 3),
            (POp.CTZ, 0b101000, 0, 3),
        ],
    )
    def test_alu_ops(self, op, a, b, expect):
        assert semantics.alu(op, a, b) == expect

    def test_ctz_of_zero(self):
        assert semantics.alu(POp.CTZ, 0, 0) == 64

    def test_sub_wraps_64bit(self):
        assert semantics.alu(POp.SUB, 0, 1) == (1 << 64) - 1

    def test_nor(self):
        assert semantics.alu(POp.NOR, 0, 0) == (1 << 64) - 1

    def test_load_reads_pmem(self):
        regs = [0] * 32
        regs[T1] = 0x100
        r = self.run_one(PInstr(POp.LD, rd=T0, rs1=T1, imm=8), regs, {0x108: 42})
        assert r.value == 42 and r.dest == T0 and r.mem_addr == 0x108

    def test_store_exposes_addr_value(self):
        regs = [0] * 32
        regs[T0] = 9
        regs[T1] = 0x200
        r = self.run_one(PInstr(POp.ST, rd=T0, rs1=T1), regs)
        assert r.is_store and r.mem_addr == 0x200 and r.value == 9

    def test_branch_taken(self):
        regs = [0] * 32
        r = semantics.step(PInstr(POp.BEQZ, rs1=T0, target=5), 0, regs, lambda a: 0)
        assert r.taken and r.next_index == 5

    def test_branch_not_taken(self):
        regs = [0] * 32
        regs[T0] = 1
        r = semantics.step(PInstr(POp.BEQZ, rs1=T0, target=5), 0, regs, lambda a: 0)
        assert not r.taken and r.next_index == 1

    def test_trap_raises(self):
        with pytest.raises(ProtocolError):
            self.run_one(PInstr(POp.TRAP, imm=3))

    def test_uncached_carries_operand(self):
        regs = [0] * 32
        regs[T0] = 0xBEEF
        r = self.run_one(PInstr(POp.SENDH, rs1=T0), regs)
        assert r.uncached and r.value == 0xBEEF


class TestHandlerTable:
    def test_placement_aligns_to_icache_lines(self):
        t = HandlerTable(code_base=0x1000)
        h1 = HandlerBuilder("a")
        h1.done()
        h2 = HandlerBuilder("b")
        h2.done()
        t.place(h1.build())
        t.place(h2.build())
        assert t["a"].pc == 0x1000
        assert t["b"].pc % 64 == 0
        assert t["b"].pc > t["a"].pc

    def test_full_table_builds(self):
        from repro.protocol.handlers import build_handler_table

        t = build_handler_table()
        assert len(t.by_name) >= 20
        assert t.total_instructions() > 300
        # The paper's short critical handlers really are short.
        assert len(t["h_reply_data_sh"]) <= 6
        assert len(t["h_int_shared"]) <= 6
