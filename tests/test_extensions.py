"""The active-memory protocol extension (repro.protocol.extensions):
remote fetch-and-op executed by the home's protocol engine."""

import pytest

from repro.apps.base import AppContext
from repro.apps.program import AWAIT
from repro.protocol.extensions import AM_FAI, AM_SWAP, AM_TAS, apply_am_op
from repro.sim.driver import run_machine
from tests.conftest import small_machine

pytestmark = pytest.mark.slow


class TestSemantics:
    def test_op_table(self):
        assert apply_am_op(AM_FAI, 5, 3) == 8
        assert apply_am_op(AM_SWAP, 5, 3) == 3
        assert apply_am_op(AM_TAS, 0, 0) == 1
        with pytest.raises(ValueError):
            apply_am_op(99, 0, 0)

    def test_handlers_installed(self):
        m = small_machine("base", n_nodes=2)
        assert "h_am_op" in m.handler_table
        assert "h_am_reply" in m.handler_table


def run_counter_kernel(model, n_nodes, ways, increments, op="am_fai"):
    m = small_machine(model, n_nodes=n_nodes, ways=ways)
    ctx = AppContext(m)
    counter = ctx.space.alloc(0, 128)
    returns = []

    def body(k, g):
        for _ in range(increments):
            k.atomic(counter, op, 1)
            old = yield AWAIT
            returns.append(old)
        yield from ctx.barrier.wait(k, g)

    st = run_machine(m, ctx.build_sources(body), max_cycles=3_000_000)
    return m, st, counter, returns


class TestRemoteFetchAndOp:
    @pytest.mark.parametrize("model", ["base", "smtp"])
    def test_fai_counts_exactly(self, model):
        m, st, counter, returns = run_counter_kernel(model, 2, 2, increments=4)
        assert m.words[counter] == 4 * 4
        # fetch-and-add returns every intermediate value exactly once.
        assert sorted(returns) == list(range(16))

    def test_am_handlers_run_at_home(self):
        m, st, counter, _ = run_counter_kernel("smtp", 2, 1, increments=3)
        home = m.layout.home_of(counter)
        assert m.nodes[home].stats.protocol.handlers_by_type["h_am_op"] == 6
        # Requesters run the reply handler for their own ops.
        assert "h_am_reply" in m.nodes[1].stats.protocol.handlers_by_type

    def test_no_line_movement(self):
        """The counter line never enters any cache — that is the whole
        point of active-memory operations."""
        m, st, counter, _ = run_counter_kernel("base", 2, 1, increments=5)
        for node in m.nodes:
            assert node.hierarchy.l2.lookup(counter) is None

    def test_am_tas_mutual_exclusion_primitive(self):
        m, st, word, returns = run_counter_kernel(
            "base", 2, 1, increments=1, op="am_tas"
        )
        # Exactly one thread saw 0 (winner); the other saw 1.
        assert sorted(returns) == [0, 1]

    def test_contended_am_beats_cached_atomics(self):
        """When every access comes from a different node in turn (the
        worst case for a cached atomic: the exclusive line bounces on
        every op), the remote op wins."""
        def contend(op):
            m = small_machine("base", n_nodes=4)
            ctx = AppContext(m)
            counter = ctx.space.alloc(0, 128)

            def body(k, g):
                for _ in range(8):
                    k.atomic(counter, op, 1)
                    _ = yield AWAIT
                    # Interleave with other nodes: each op re-contends.
                    yield ("sleep", 40)
                yield from ctx.barrier.wait(k, g)

            st = run_machine(m, ctx.build_sources(body), max_cycles=5_000_000)
            assert m.words[counter] == 32
            return st.cycles

        am = contend("am_fai")
        cached = contend("fai")
        assert am < cached
