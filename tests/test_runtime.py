"""Barriers, locks and spins running on real machines — the
synchronization substrate the workloads are built on."""

import pytest

from repro.apps.base import AppContext, BlockMap
from repro.apps.program import AWAIT, KernelBuilder, ThreadProgram
from repro.apps.runtime import AddressSpace, SpinLock, TreeBarrier, spin_until
from tests.conftest import small_machine


def run_bodies(m, make_body):
    ctx = AppContext(m)
    sources = ctx.build_sources(make_body)
    m.install_cores(sources)
    m.run(1_500_000)
    assert m.all_done(), m._deadlock_report()
    m.quiesce()
    m.final_checks()
    return ctx


class TestAddressSpace:
    def test_alloc_homed_correctly(self):
        m = small_machine("base", n_nodes=4)
        space = AddressSpace(m.layout, 4)
        for node in range(4):
            addr = space.alloc(node, 256)
            assert m.layout.home_of(addr) == node

    def test_alignment(self):
        m = small_machine("base", n_nodes=2)
        space = AddressSpace(m.layout, 2)
        a = space.alloc(0, 8, align=128)
        b = space.alloc(0, 8, align=128)
        assert a % 128 == 0 and b % 128 == 0 and b > a

    def test_exhaustion_raises(self):
        m = small_machine("base", n_nodes=2)
        space = AddressSpace(m.layout, 2)
        with pytest.raises(MemoryError):
            space.alloc(0, 1 << 30)


class TestBlockMap:
    def test_even_split(self):
        bm = BlockMap(8, 4)
        assert [bm.count_of(g) for g in range(4)] == [2, 2, 2, 2]
        assert bm.owner_of(5) == 2
        assert bm.local_index(5) == 1

    def test_uneven_split(self):
        bm = BlockMap(10, 4)
        assert [bm.count_of(g) for g in range(4)] == [3, 3, 2, 2]
        assert sum(bm.count_of(g) for g in range(4)) == 10

    def test_more_threads_than_items(self):
        bm = BlockMap(3, 8)
        assert sum(bm.count_of(g) for g in range(8)) == 3
        assert bm.count_of(7) == 0
        assert bm.range_of(7) == range(3, 3)

    def test_owner_covers_all_items(self):
        bm = BlockMap(17, 5)
        for i in range(17):
            assert i in bm.range_of(bm.owner_of(i))


class TestBarrier:
    @pytest.mark.parametrize("n_nodes,ways", [(1, 2), (2, 1), (2, 2), (4, 1)])
    def test_barrier_synchronizes(self, n_nodes, ways):
        """No thread may pass barrier k until all reached it: verified
        by checking a per-round shared counter."""
        m = small_machine("smtp", n_nodes=n_nodes, ways=ways)
        ctx = AppContext(m)
        counter = ctx.space.alloc(0, 128)
        violations = []

        def body(k, g):
            for rnd in range(3):
                k.atomic(counter, "fai", 1)
                before = yield AWAIT
                yield from ctx.barrier.wait(k, g)
                # After barrier r, the counter must show that all
                # n_threads incremented it during round r.
                k.spin_load(counter)
                seen = yield AWAIT
                if seen < (rnd + 1) * ctx.n_threads:
                    violations.append((g, rnd, seen))

        sources = ctx.build_sources(body)
        m.install_cores(sources)
        m.run(2_000_000)
        assert m.all_done(), m._deadlock_report()
        m.quiesce()
        assert not violations
        assert m.words[counter] == 3 * ctx.n_threads
        m.final_checks()

    def test_barrier_reusable_many_rounds(self):
        m = small_machine("base", n_nodes=2)
        ctx = AppContext(m)

        def body(k, g):
            for _ in range(6):
                k.alu()
                yield
                yield from ctx.barrier.wait(k, g)

        sources = ctx.build_sources(body)
        m.install_cores(sources)
        m.run(2_000_000)
        assert m.all_done()
        m.quiesce()
        m.final_checks()


class TestSpinLock:
    @pytest.mark.parametrize("model", ["base", "smtp"])
    def test_mutual_exclusion_counter(self, model):
        m = small_machine(model, n_nodes=2, ways=2)
        ctx = AppContext(m)
        lock = SpinLock(ctx.space, node=0)
        counter = ctx.space.alloc(1, 128)
        increments = 4

        def body(k, g):
            for _ in range(increments):
                yield from lock.acquire(k)
                k.spin_load(counter)
                v = yield AWAIT
                k.store(counter, value=v + 1)
                lock.release(k)
                yield

        sources = ctx.build_sources(body)
        m.install_cores(sources)
        m.run(3_000_000)
        assert m.all_done(), m._deadlock_report()
        m.quiesce()
        # Lost updates would show a lower count.
        assert m.words[counter] == increments * ctx.n_threads
        assert m.words[lock.addr] == 0
        m.final_checks()


class TestSpinUntil:
    def test_spin_observes_remote_store(self):
        m = small_machine("smtp", n_nodes=2)
        ctx = AppContext(m)
        flag = ctx.space.alloc(0, 128)
        observed = []

        def body(k, g):
            if g == 0:
                for _ in range(50):
                    k.alu()
                yield
                k.store(flag, value=7)
                yield
            else:
                v = yield from spin_until(k, flag, lambda v: v == 7)
                observed.append(v)
            yield from ctx.barrier.wait(k, g)

        sources = ctx.build_sources(body)
        m.install_cores(sources)
        m.run(1_000_000)
        assert m.all_done(), m._deadlock_report()
        m.quiesce()
        assert observed == [7]
        m.final_checks()
