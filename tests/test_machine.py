"""Machine assembly: clocking, watchdog, stats roll-up, models."""

import pytest

from repro.common.errors import ConfigError, DeadlockError
from repro.common.stats import speedup
from repro.core.models import MODELS, make_machine_params, paper_exact_params
from tests.conftest import Completion, small_machine


class TestModelFactory:
    def test_all_models_construct(self):
        for model in MODELS:
            mp = make_machine_params(model, n_nodes=2)
            assert mp.model == model

    def test_base_is_400mhz(self):
        mp = make_machine_params("base")
        assert mp.mc_freq_ghz == pytest.approx(0.4)
        assert mp.mc_divisor == 5

    def test_integrated_models_half_speed(self):
        for model in ("int512kb", "int64kb", "smtp"):
            mp = make_machine_params(model)
            assert mp.mc_divisor == 2

    def test_intperfect_full_speed(self):
        mp = make_machine_params("intperfect")
        assert mp.mc_divisor == 1
        assert mp.dir_cache == "perfect"

    def test_dir_cache_ratio_preserved(self):
        a = make_machine_params("int512kb").dir_cache
        b = make_machine_params("int64kb").dir_cache
        assert a == 8 * b

    def test_smtp_has_no_dir_cache(self):
        assert make_machine_params("smtp").dir_cache is None

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigError):
            make_machine_params("origin2000")

    def test_paper_exact_full_sizes(self):
        mp = paper_exact_params("smtp")
        assert mp.proc.l2.size_bytes == 2 * 1024 * 1024
        assert mp.sdram_access_cycles == 160
        assert mp.hop_cycles == 50

    def test_time_scale_divides_latencies(self):
        mp = make_machine_params("smtp", time_scale=4)
        assert mp.sdram_access_cycles == 40
        assert mp.hop_cycles == 12

    def test_4ghz_keeps_base_mc_at_400mhz(self):
        mp = make_machine_params("base", freq_ghz=4.0)
        assert mp.mc_freq_ghz == pytest.approx(0.4)
        assert mp.mc_divisor == 10


class TestMachine:
    def test_watchdog_fires_on_stall(self):
        m = small_machine("base", n_nodes=1, watchdog_cycles=100)
        with pytest.raises(DeadlockError):
            for _ in range(500):
                m.step()

    def test_progress_resets_watchdog(self):
        # The window must exceed one full miss round-trip (~254 cycles
        # on "base": the 400 MHz protocol processor runs the whole
        # h_get path) but be shorter than the run's total length, so
        # the test only passes if completions reset the counter.
        m = small_machine("base", n_nodes=1, watchdog_cycles=300)
        done = Completion(m)
        m.nodes[0].hierarchy.load(0x1000, False, done.cb("a"))
        for _ in range(150):
            m.step()
        m.nodes[0].hierarchy.load(0x2000, False, done.cb("b"))
        m.quiesce()  # no DeadlockError

    def test_stats_rollup(self):
        m = small_machine("base", n_nodes=2)
        done = Completion(m)
        m.nodes[0].hierarchy.load((1 << 22) | 0x80, False, done.cb("a"))
        m.quiesce()
        st = m.collect_stats()
        assert st.n_nodes == 2
        assert st.cycles == m.cycle
        assert st.nodes[1].protocol.handlers >= 1
        assert st.to_dict()["model"] == "base"

    def test_speedup_helper(self):
        m1 = small_machine("base", n_nodes=1)
        m1.cycle = 1000
        m2 = small_machine("base", n_nodes=2)
        m2.cycle = 400
        assert speedup(m1.collect_stats(), m2.collect_stats()) == pytest.approx(2.5)

    def test_quiesce_raises_if_stuck(self):
        m = small_machine("smtp", n_nodes=1)
        # No engine installed (no cores): a local miss can never be
        # serviced, so quiesce must give up with a report.
        m.nodes[0].hierarchy.load(0x1000, False, lambda v: None)
        with pytest.raises(DeadlockError):
            m.quiesce(max_cycles=5_000)


class TestClockDomains:
    def test_mc_steps_on_divided_clock(self):
        m = small_machine("base", n_nodes=1)  # divisor 5
        calls = []
        orig = m.nodes[0].mc.step
        m.nodes[0].mc.step = lambda: calls.append(m.cycle) or orig()
        for _ in range(20):
            m.step()
        assert calls == [5, 10, 15, 20]

    def test_4ghz_run_completes(self):
        m = small_machine("base", n_nodes=1, freq_ghz=4.0)
        done = Completion(m)
        m.nodes[0].hierarchy.load(0x1000, False, done.cb("a"))
        m.quiesce()
        assert "a" in done
