"""Fidelity spot-checks: simulated latencies and instruction counts
land where the configuration says they must."""

import pytest

from repro.apps.program import AWAIT, KernelBuilder, ThreadProgram
from tests.conftest import Completion, small_machine

pytestmark = pytest.mark.slow


class TestLatencyComposition:
    def _load_latency(self, m, node, addr):
        done = Completion(m)
        m.nodes[node].hierarchy.load(addr, False, done.cb("x"))
        start = m.cycle
        m.quiesce()
        return done.cycle("x") - start

    def test_local_miss_floor(self):
        """A local L2 miss can't be faster than the SDRAM access."""
        m = small_machine("intperfect", n_nodes=1)
        lat = self._load_latency(m, 0, 0x1000)
        assert lat >= m.mp.sdram_access_cycles

    def test_remote_miss_includes_network(self):
        m = small_machine("intperfect", n_nodes=2)
        local = self._load_latency(m, 0, 0x1000)
        remote = self._load_latency(m, 0, (1 << 22) | 0x1000)
        # Request + reply each cross >= 2 links at hop latency, plus
        # data serialization once.
        assert remote >= local + 4 * m.mp.hop_cycles

    def test_far_nodes_slower_than_near(self):
        # Paper-scale latencies (time_scale=1): 3 extra router hops at
        # 50 cycles each dominate any handler-warmth noise.
        m = small_machine("intperfect", n_nodes=16, time_scale=1)
        # Warm the requester-side handler code first so the comparison
        # isolates network distance.
        self._load_latency(m, 0, (2 << 22) | 0x80)
        near = self._load_latency(m, 0, (1 << 22) | 0x80)  # same router
        far = self._load_latency(m, 0, (15 << 22) | 0x80)  # 3 net hops
        assert far > near

    def test_4ghz_scales_miss_cycles(self):
        lat = {}
        for freq in (2.0, 4.0):
            m = small_machine("base", n_nodes=1, freq_ghz=freq)
            lat[freq] = self._load_latency(m, 0, 0x1000)
        # Same wall-clock memory path at twice the clock: roughly twice
        # the cycles (protocol processing adds a sub-linear part).
        assert 1.5 < lat[4.0] / lat[2.0] < 2.5


class TestInstructionAccounting:
    def test_committed_matches_program(self):
        m = small_machine("base", n_nodes=1)

        def body(k):
            for _ in range(25):
                k.alu()
            yield
            k.store(0x100, value=1)
            a = k.load(0x100)
            k.branch(False, 0)
            yield

        prog = ThreadProgram(body, KernelBuilder(0, 0x400000), m.wheel)
        m.install_cores([[prog]])
        m.run(100_000)
        m.quiesce()
        t = m.collect_stats().app_threads()[0]
        assert t.committed == 28
        assert t.loads == 1 and t.stores == 1 and t.branches == 1

    def test_squashed_not_counted_as_committed(self):
        m = small_machine("base", n_nodes=1)

        def body(k):
            top = k.here()
            for i in range(60):
                k.set_pc(top)
                k.alu()
                # Anti-pattern branch: mispredicts often.
                k.branch(i % 3 == 0, top if i % 3 else top + 512)
                yield

        prog = ThreadProgram(body, KernelBuilder(0, 0x400000), m.wheel)
        m.install_cores([[prog]])
        m.run(200_000)
        m.quiesce()
        t = m.collect_stats().app_threads()[0]
        assert t.committed == 120
        assert t.squashed > 0

    def test_protocol_instruction_count_matches_handler_paths(self):
        m = small_machine("smtp", n_nodes=1)
        from repro.apps.program import KernelBuilder as KB

        def idle(k):
            k.alu()
            yield

        m.install_cores([[ThreadProgram(idle, KB(0, 0x400000), m.wheel)]])
        done = Completion(m)
        m.nodes[0].hierarchy.load(0x1000, False, done.cb("a"))
        m.quiesce()
        p = m.nodes[0].stats.protocol
        # h_get's UNOWNED path is 24 instructions (3 of them the
        # XFER-debt gate); the final SWITCH/LDCTXT pair stalls forever
        # awaiting the next request (paper §2.1), so exactly 22 retire
        # — and no synthetic wrong-path µops leak into the count.
        assert p.instructions == 22
