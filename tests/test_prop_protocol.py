"""Property tests for the protocol's packed encodings.

Driven by Hypothesis: the directory-entry word and the message-header
word are both hand-packed bitfields manipulated by handler shift/mask
code, and the Python-side mirrors (``directory.encode``/accessors,
``handlers.make_header``/``header_*``) must round-trip every legal
field combination without aliasing between fields.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.network.messages import MsgType
from repro.protocol import directory as d
from repro.protocol.handlers import (
    header_acks,
    header_peer,
    header_requester,
    header_type,
    make_header,
)

STATES = st.sampled_from(
    [d.UNOWNED, d.SHARED, d.EXCLUSIVE, d.BUSY_SHARED, d.BUSY_EXCLUSIVE]
)
NODES = st.integers(min_value=0, max_value=d.OWNER_MASK)
VECTORS = st.integers(min_value=0, max_value=(1 << 48) - 1)
MSG_TYPES = st.sampled_from(list(MsgType))
ACKS = st.integers(min_value=0, max_value=0x3F)


class TestDirectoryEntryRoundTrip:
    @given(state=STATES, owner=NODES, waiter=NODES, vector=VECTORS)
    def test_fields_round_trip(self, state, owner, waiter, vector):
        entry = d.encode(state, owner=owner, waiter=waiter, vector=vector)
        assert d.state_of(entry) == state
        assert d.owner_of(entry) == owner
        assert d.waiter_of(entry) == waiter
        assert d.vector_of(entry) == vector

    @given(state=STATES, owner=NODES, waiter=NODES, vector=VECTORS)
    def test_encode_never_sets_xfer_debt(self, state, owner, waiter, vector):
        # Bit 15 is reserved for h_put's late arm; no legal field
        # combination may alias into it.
        entry = d.encode(state, owner=owner, waiter=waiter, vector=vector)
        assert not d.xfer_debt(entry)

    @given(vector=VECTORS)
    def test_sharers_match_vector_bits(self, vector):
        entry = d.encode(d.SHARED, vector=vector)
        sharers = d.sharers_of(entry)
        assert sharers == sorted(sharers)
        assert len(set(sharers)) == len(sharers)
        rebuilt = 0
        for node in sharers:
            rebuilt |= 1 << node
        assert rebuilt == vector

    @given(state=STATES, owner=NODES, waiter=NODES, vector=VECTORS)
    def test_describe_total(self, state, owner, waiter, vector):
        # describe() is used in findings and counterexamples; it must
        # never raise, and must name the state.
        entry = d.encode(state, owner=owner, waiter=waiter, vector=vector)
        text = d.describe(entry)
        assert d.STATE_NAMES[state] in text
        assert "xfer-debt" in d.describe(entry | (1 << d.XFER_DEBT_SHIFT))


class TestHeaderRoundTrip:
    @given(
        mtype=MSG_TYPES,
        peer=NODES,
        requester=NODES,
        acks=ACKS,
        found=st.booleans(),
        dirty=st.booleans(),
    )
    def test_fields_round_trip(self, mtype, peer, requester, acks, found, dirty):
        hdr = make_header(
            mtype, peer=peer, requester=requester, acks=acks,
            found=found, dirty=dirty,
        )
        assert header_type(hdr) == mtype.value
        assert header_peer(hdr) == peer
        assert header_requester(hdr) == requester
        assert header_acks(hdr) == acks

    @given(mtype=MSG_TYPES, peer=NODES, requester=NODES, acks=ACKS)
    def test_flag_bits_do_not_alias_fields(self, mtype, peer, requester, acks):
        plain = make_header(mtype, peer=peer, requester=requester, acks=acks)
        flagged = make_header(
            mtype, peer=peer, requester=requester, acks=acks,
            found=True, dirty=True,
        )
        for accessor in (header_type, header_peer, header_requester, header_acks):
            assert accessor(plain) == accessor(flagged)
