"""Randomized coherence traffic: the strongest correctness evidence.

Random mixes of loads/stores/atomics/prefetches from every node over a
small set of hot lines, injected directly into the hierarchies, then a
full audit: every transaction completes, at most one writable copy
ever exists, no store is ever lost, and the directory covers every
cached copy at quiesce.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from tests.conftest import small_machine


def random_traffic(m, seed, n_ops, n_lines, hot_fraction=0.7):
    rng = random.Random(seed)
    lines = [
        (node << 22) | (i * 128)
        for node in range(m.mp.n_nodes)
        for i in range(1, n_lines + 1)
    ]
    hot = lines[: max(1, len(lines) // 3)]
    outstanding = [0]
    issued = [0]

    def cb(v):
        outstanding[0] -= 1

    ops_left = [n_ops]

    def maybe_issue():
        while ops_left[0] > 0 and outstanding[0] < 8:
            node = rng.randrange(m.mp.n_nodes)
            addr = rng.choice(hot if rng.random() < hot_fraction else lines)
            addr += rng.randrange(0, 128, 8)
            h = m.nodes[node].hierarchy
            kind = rng.random()
            if kind < 0.45:
                r = h.load(addr, False, cb)
            elif kind < 0.85:
                r = h.store(addr, False, rng.randrange(1000), cb)
            elif kind < 0.95:
                r = h.atomic(addr & ~127, "fai", 1, cb)
            else:
                h.prefetch(addr, exclusive=rng.random() < 0.5)
                ops_left[0] -= 1
                continue
            ops_left[0] -= 1
            issued[0] += 1
            if r[0] == "miss":
                outstanding[0] += 1
            elif r[0] == "blocked":
                ops_left[0] += 1  # retry later
                issued[0] -= 1
                break

    for _ in range(3_000_000):
        maybe_issue()
        if ops_left[0] <= 0 and outstanding[0] == 0 and not m.busy():
            break
        m.step()
    assert outstanding[0] == 0, (
        f"{outstanding[0]} transactions never completed "
        f"(issued {issued[0]})\n" + m._deadlock_report()
    )
    m.quiesce()


@pytest.mark.parametrize("model", ["base", "smtp"])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_random_traffic_two_nodes(model, seed):
    m = small_machine(model, n_nodes=2)
    if model == "smtp":
        _install_idle_cores(m)
    random_traffic(m, seed, n_ops=300, n_lines=4)
    m.checker.check_single_writer(m)
    m.final_checks()


@pytest.mark.parametrize("seed", [11, 12])
def test_random_traffic_four_nodes(seed):
    m = small_machine("base", n_nodes=4)
    random_traffic(m, seed, n_ops=400, n_lines=3)
    m.final_checks()


def test_random_traffic_eight_nodes_heavy_contention():
    m = small_machine("int64kb", n_nodes=8)
    random_traffic(m, seed=99, n_ops=500, n_lines=1, hot_fraction=1.0)
    m.final_checks()


def test_random_traffic_smtp_four_nodes():
    m = small_machine("smtp", n_nodes=4)
    _install_idle_cores(m)
    random_traffic(m, seed=7, n_ops=300, n_lines=2)
    m.final_checks()


def _install_idle_cores(m):
    from repro.apps.program import KernelBuilder, ThreadProgram

    def idle(k):
        k.alu()
        yield

    m.install_cores(
        [
            [ThreadProgram(idle, KernelBuilder(0, 0x400000 + n * 0x10000), m.wheel)]
            for n in range(m.mp.n_nodes)
        ]
    )


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(seed=st.integers(0, 10_000))
def test_random_traffic_property(seed):
    """Hypothesis sweep over seeds on the base model."""
    m = small_machine("base", n_nodes=2)
    random_traffic(m, seed, n_ops=150, n_lines=2)
    m.final_checks()
