"""TLBs and the instruction-space separation."""

from repro.caches.hierarchy import _TLB
from tests.conftest import Completion, small_machine


class TestTLBModel:
    def test_hit_after_fill(self):
        t = _TLB(entries=4, page_bytes=4096)
        assert not t.access(0x1000)
        assert t.access(0x1FFF)  # same page
        assert not t.access(0x2000)

    def test_lru_capacity(self):
        t = _TLB(entries=2, page_bytes=4096)
        t.access(0x0000)
        t.access(0x1000)
        t.access(0x0000)  # MRU
        t.access(0x2000)  # evicts page 1
        assert t.access(0x0000)
        assert not t.access(0x1000)

    def test_counters(self):
        t = _TLB(entries=4, page_bytes=4096)
        t.access(0x0)
        t.access(0x0)
        assert t.misses == 1 and t.hits == 1


class TestTLBPenalty:
    def test_page_crossing_loads_pay_penalty(self, machine2):
        m = machine2
        h = m.nodes[0].hierarchy
        done = Completion(m)
        # Warm one page, then compare hit latencies on/off page.
        h.load(0x1000, False, done.cb("warm"))
        m.quiesce()
        kind, lat_same, _ = h.load(0x1008, False, done.cb("same"))
        assert kind == "hit"
        # A fresh page costs the TLB penalty even on a (fabricated)
        # cache hit path; check the dtlb recorded the miss.
        misses_before = h.dtlb.misses
        h.load(0x100000, False, done.cb("far"))
        m.quiesce()
        assert h.dtlb.misses > misses_before

    def test_protocol_accesses_skip_tlb(self, smtp2):
        m = smtp2
        h = m.nodes[0].hierarchy
        done = Completion(m)
        before = h.dtlb.misses + h.dtlb.hits
        from repro.caches.hierarchy import PROTO_SPACE_BIT

        h.load(PROTO_SPACE_BIT | 0x5000, True, done.cb("p"))
        m.quiesce()
        # Paper §2.1: the protocol thread never touches the TLBs.
        assert h.dtlb.misses + h.dtlb.hits == before


class TestInstructionSpace:
    def test_icache_and_dcache_disjoint(self, machine2):
        m = machine2
        h = m.nodes[0].hierarchy
        done = []
        h.ifetch(0x2000, False, lambda: done.append(1))
        m.quiesce()
        # The same numeric address as data misses separately.
        kind, *_ = h.load(0x2000, False, lambda v: None)
        assert kind == "miss"
        m.quiesce()
        # And the code line stays cached.
        kind = h.ifetch(0x2010, False, lambda: None)
        assert kind[0] == "hit"

    def test_itlb_counts_app_fetches(self, machine2):
        m = machine2
        h = m.nodes[0].hierarchy
        before = h.itlb.misses
        h.ifetch(0x900000, False, lambda: None)
        m.quiesce()
        assert h.itlb.misses == before + 1
