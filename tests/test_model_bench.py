"""BENCH_model.json: the committed state-space trajectory, gated.

``make model-deep`` regenerates the file with one row per model-checker
configuration (states, canonical orbit coverage, reduction ratios,
wall time).  Tier-1 pins it three ways:

* schema + required configs present, clean, exhaustively explored;
* internal consistency (ratios recompute from the recorded counts);
* for the cheap configs, the recorded counts are *re-derived* by
  running the reduced checker now — state counts at ``--jobs 1`` are
  deterministic, so any drift means the transition relation or a
  reduction changed and the trajectory must be regenerated
  deliberately (run ``make model-deep`` and commit the diff).
"""

import json
from pathlib import Path

import pytest

from repro.analyze.model import check_model

BENCH = Path(__file__).resolve().parent.parent / "BENCH_model.json"

#: Every row make model-deep writes (key -> exhaustive expected).
REQUIRED_CONFIGS = (
    "n2-L1-loads1-stores1",
    "n4-L1-loads0-stores1",
    "n3-L2-loads0-stores1",
    "n2-L2-loads1-stores1",
)

#: Rows cheap enough to re-derive exactly inside tier-1.
REDERIVE = {
    "n4-L1-loads0-stores1": dict(n_nodes=4, loads=0, stores=1, n_lines=1),
    "n3-L2-loads0-stores1": dict(n_nodes=3, loads=0, stores=1, n_lines=2),
}

ROW_FIELDS = {
    "nodes", "lines", "loads", "stores", "states", "sym_states",
    "transitions", "pruned", "max_depth", "truncated", "violation",
    "sym_ratio", "por_ratio", "seconds",
}


def bench():
    assert BENCH.exists(), "BENCH_model.json missing: run `make model-deep`"
    return json.loads(BENCH.read_text())


def test_schema_and_required_configs():
    doc = bench()
    assert doc["schema"] == 1
    for key in REQUIRED_CONFIGS:
        assert key in doc["configs"], f"missing row {key}"
    for key, row in doc["configs"].items():
        assert ROW_FIELDS <= set(row), (key, sorted(row))
        assert row["truncated"] is False, f"{key} was not exhaustive"
        assert row["violation"] is False, f"{key} recorded a violation"
        assert row["states"] > 0 and row["seconds"] >= 0


def test_rows_are_internally_consistent():
    for key, row in bench()["configs"].items():
        explored = row["transitions"] + row["pruned"]
        assert row["sym_ratio"] == pytest.approx(
            row["sym_states"] / row["states"], abs=1e-3
        ), key
        expect_por = row["pruned"] / explored if explored else 0.0
        assert row["por_ratio"] == pytest.approx(expect_por, abs=1e-3), key
        # Symmetry never loses states: orbits cover at least the
        # canonical set, and larger machines must show real compression.
        assert row["sym_states"] >= row["states"], key
        if row["nodes"] >= 3 or row["lines"] >= 2:
            assert row["sym_ratio"] > 1.0, key
        assert key == (
            f"n{row['nodes']}-L{row['lines']}"
            f"-loads{row['loads']}-stores{row['stores']}"
        )


@pytest.mark.parametrize("key", sorted(REDERIVE))
def test_cheap_rows_rederive_exactly(key):
    row = bench()["configs"][key]
    result = check_model(jobs=1, **REDERIVE[key])
    assert result.violation is None
    assert not result.truncated
    got = dict(
        states=result.states, sym_states=result.sym_states,
        transitions=result.transitions, pruned=result.pruned,
        max_depth=result.max_depth,
    )
    want = {k: row[k] for k in got}
    assert got == want, (
        f"{key} drifted from the committed trajectory: the transition "
        "relation or a reduction changed — rerun `make model-deep` "
        "and commit BENCH_model.json if the change is intended"
    )
