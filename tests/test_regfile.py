"""Register renaming: maps, free lists, reservations, checkpoints."""

import pytest

from repro.common.params import ProcessorParams
from repro.isa.uop import FP_BASE, Uop, UopKind
from repro.pipeline.regfile import RenameUnit


def unit(ways=1, protocol=True):
    return RenameUnit(ProcessorParams(app_threads=ways, protocol_thread=protocol))


def alu(thread, dest, srcs=(), protocol=False):
    return Uop(UopKind.ALU, thread, dest=dest, srcs=srcs, protocol=protocol)


class TestRename:
    def test_boot_maps_all_logicals(self):
        r = unit()
        # 1 app + 1 protocol context => 64 int mappings consumed.
        assert r.free_int_count() == 160 - 64

    def test_dest_gets_fresh_preg(self):
        r = unit()
        u = alu(0, dest=5)
        old = r.int_map[0][5]
        r.rename(u)
        assert u.pdest != old
        assert u.pdest_old == old
        assert r.int_map[0][5] == u.pdest

    def test_sources_map_through(self):
        r = unit()
        u1 = alu(0, dest=5)
        r.rename(u1)
        u2 = alu(0, dest=6, srcs=(5,))
        r.rename(u2)
        assert u2.psrcs == (u1.pdest,)

    def test_fp_namespace(self):
        r = unit()
        u = Uop(UopKind.FALU, 0, dest=FP_BASE + 3, srcs=(FP_BASE + 1,))
        r.rename(u)
        assert u.pdest >= (1 << 20)

    def test_readiness_lifecycle(self):
        r = unit()
        u = alu(0, dest=5)
        r.rename(u)
        assert not r.is_ready(u.pdest)
        r.mark_ready(u.pdest)
        assert r.is_ready(u.pdest)
        consumer = alu(0, dest=6, srcs=(5,))
        r.rename(consumer)
        assert r.all_ready(consumer)

    def test_commit_frees_old_mapping(self):
        r = unit()
        before = r.free_int_count()
        u = alu(0, dest=5)
        r.rename(u)
        assert r.free_int_count() == before - 1
        r.commit_free(u)
        assert r.free_int_count() == before

    def test_squash_frees_new_mapping(self):
        r = unit()
        before = r.free_int_count()
        u = alu(0, dest=5)
        r.rename(u)
        r.squash_free(u)
        assert r.free_int_count() == before

    def test_reserved_register_for_protocol(self):
        r = unit()
        # Drain the free list down to the reserve as the application.
        while r.can_rename(alu(0, dest=1)):
            r.rename(alu(0, dest=1))
        assert r.free_int_count() == 1  # the reserved register
        assert not r.can_rename(alu(0, dest=1))
        proto = alu(1, dest=2, protocol=True)
        assert r.can_rename(proto)
        r.rename(proto)
        assert r.free_int_count() == 0

    def test_no_reservation_without_protocol_thread(self):
        r = unit(protocol=False)
        while r.can_rename(alu(0, dest=1)):
            r.rename(alu(0, dest=1))
        assert r.free_int_count() == 0

    def test_checkpoint_restore(self):
        r = unit()
        u1 = alu(0, dest=5)
        r.rename(u1)
        cp = r.checkpoint(0, ras_snap=None)
        u2 = alu(0, dest=5)
        r.rename(u2)
        assert r.int_map[0][5] == u2.pdest
        r.restore(cp)
        assert r.int_map[0][5] == u1.pdest

    def test_protocol_register_occupancy_tracking(self):
        r = unit()
        assert r.proto_int_held == 32  # boot-mapped protocol logicals
        u = alu(1, dest=3, protocol=True)
        r.rename(u)
        assert r.proto_int_held == 33
        assert r.proto_int_peak == 33
        r.commit_free(u)
        assert r.proto_int_held == 32

    def test_uop_without_dest_needs_no_register(self):
        r = unit()
        u = Uop(UopKind.BRANCH, 0, srcs=(3,))
        assert r.can_rename(u)
        free = r.free_int_count()
        r.rename(u)
        assert r.free_int_count() == free
