"""The coherence checker itself: it must actually catch violations."""

import pytest

from repro.caches.coherence import CacheState
from repro.common.errors import CoherenceViolation
from repro.protocol import directory as d
from tests.conftest import Completion, small_machine


class TestCheckerCatchesBugs:
    def test_detects_double_writer(self, machine2):
        m = machine2
        done = Completion(m)
        m.nodes[0].hierarchy.store(0x1000, False, 1, done.cb("a"))
        m.quiesce()
        # Forge a second writable copy behind the protocol's back.
        m.nodes[1].hierarchy.l2.install(0x1000, CacheState.MODIFIED, version=1)
        with pytest.raises(CoherenceViolation, match="multiple nodes"):
            m.checker.check_single_writer(m)

    def test_detects_lost_update(self, machine2):
        m = machine2
        done = Completion(m)
        m.nodes[0].hierarchy.store(0x1000, False, 1, done.cb("a"))
        m.quiesce()
        # Destroy the dirty copy without a writeback.
        m.nodes[0].hierarchy.l2.invalidate(0x1000)
        with pytest.raises(CoherenceViolation, match="lost update|stores committed"):
            m.checker.final_audit(m)

    def test_detects_uncovered_copy(self, machine2):
        m = machine2
        done = Completion(m)
        m.nodes[0].hierarchy.load(0x1000, False, done.cb("a"))
        m.quiesce()
        # Corrupt the directory: claim the line is unowned.
        entry_addr = m.layout.dir_entry_addr(0x1000)
        m.nodes[0].pmem[entry_addr] = d.encode(d.UNOWNED)
        with pytest.raises(CoherenceViolation):
            m.checker.audit_directory(m)

    def test_detects_busy_at_quiesce(self, machine2):
        m = machine2
        done = Completion(m)
        m.nodes[0].hierarchy.load(0x1000, False, done.cb("a"))
        m.quiesce()
        entry_addr = m.layout.dir_entry_addr(0x1000)
        m.nodes[0].pmem[entry_addr] = d.encode(d.BUSY_SHARED, owner=0, waiter=1)
        with pytest.raises(CoherenceViolation, match="busy"):
            m.checker.audit_directory(m)

    def test_clean_run_passes(self, machine2):
        m = machine2
        done = Completion(m)
        m.nodes[0].hierarchy.store(0x1000, False, 1, done.cb("a"))
        m.quiesce()
        m.nodes[1].hierarchy.load(0x1000, False, done.cb("b"))
        m.quiesce()
        m.final_checks()

    def test_store_counting_hook(self, machine2):
        m = machine2
        done = Completion(m)
        for i in range(3):
            m.nodes[0].hierarchy.store(0x1000 + 8 * i, False, i, done.cb(str(i)))
            m.quiesce()
        assert m.checker.store_counts[0x1000] == 3


class TestCheckerAttachLifecycle:
    def test_attach_is_idempotent(self, machine2):
        # Re-attaching must not stack the on_store hook: each committed
        # store counts exactly once.
        m = machine2
        m.checker.attach(m).attach(m)
        done = Completion(m)
        m.nodes[0].hierarchy.store(0x1000, False, 1, done.cb("a"))
        m.quiesce()
        assert m.checker.store_counts[0x1000] == 1

    def test_detach_restores_original_hooks(self, machine2):
        m = machine2
        assert m.checker.attached
        m.checker.detach()
        assert not m.checker.attached
        done = Completion(m)
        m.nodes[0].hierarchy.store(0x1000, False, 1, done.cb("a"))
        m.quiesce()
        assert 0x1000 not in m.checker.store_counts

    def test_context_manager_detaches(self):
        from repro.protocol.checker import CoherenceChecker
        from tests.conftest import small_machine

        m = small_machine("base", check_coherence=False)
        hooks_before = [n.hierarchy.on_store for n in m.nodes]
        with CoherenceChecker().attach(m) as checker:
            assert checker.attached
            done = Completion(m)
            m.nodes[0].hierarchy.store(0x1000, False, 1, done.cb("a"))
            m.quiesce()
            assert checker.store_counts[0x1000] == 1
        assert not checker.attached
        assert [n.hierarchy.on_store for n in m.nodes] == hooks_before

    def test_two_machines_one_checker(self, machine2):
        # A second machine's hierarchies are new objects: attach must
        # hook them even though the first machine is already chained.
        from tests.conftest import small_machine

        other = small_machine("base", check_coherence=False)
        n_before = len(machine2.checker._chained)
        machine2.checker.attach(other)
        assert len(machine2.checker._chained) == n_before + len(other.nodes)
        machine2.checker.detach()
