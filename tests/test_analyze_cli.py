"""``python -m repro analyze``: exit codes, JSON schema, inventory
generation, and the counterexample -> ``repro fuzz --replay`` pipeline.

The mutation tests monkeypatch ``build_h_getx`` so every component that
rebuilds the handler table (the analyzer, the model checker, and the
replay machine) sees the same deliberately broken protocol.
"""

import json
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.network.messages import MsgType
from repro.protocol import directory as d
from repro.protocol import handlers as handlers_mod
from repro.protocol.handlers import T0, T3, T4, compose_send, dir_prologue
from repro.protocol.isa import HandlerBuilder

REPO_ROOT = Path(__file__).resolve().parent.parent


def install_skipped_intervention_bug(monkeypatch):
    """h_getx grants exclusivity without probing the current owner."""

    def broken_getx():
        h = HandlerBuilder("h_getx")
        dir_prologue(h)
        h.slli(T4, T3, d.OWNER_SHIFT)
        h.ori(T4, T4, d.EXCLUSIVE)
        h.st(T4, T0)
        compose_send(h, MsgType.DATA_EXCL, dest_reg=T3, req_reg=T3)
        h.done()
        return h.build()

    monkeypatch.setattr(handlers_mod, "build_h_getx", broken_getx)


def run_analyze(tmp_path, *extra):
    return main([
        "analyze", "--jobs", "1",
        "--artifacts", str(tmp_path / "artifacts"),
        *extra,
    ])


class TestExitCodes:
    def test_shipped_table_exits_zero(self, tmp_path, capsys):
        assert run_analyze(tmp_path) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out
        assert "[model]" in out
        assert not (tmp_path / "artifacts").exists()

    def test_findings_exit_one(self, tmp_path, capsys, monkeypatch):
        install_skipped_intervention_bug(monkeypatch)
        assert run_analyze(tmp_path) == 1
        out = capsys.readouterr().out
        assert "FINDING [model/" in out

    def test_bad_config_exits_two(self, tmp_path, capsys):
        assert run_analyze(tmp_path, "--max-nodes", "7") == 2
        assert "analyze:" in capsys.readouterr().err


class TestJsonReport:
    def test_schema(self, tmp_path, capsys):
        assert run_analyze(tmp_path, "--json", "--no-model") == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == 1
        assert doc["clean"] is True
        assert doc["n_findings"] == 0
        assert doc["n_suppressed"] > 0
        assert {"pass", "code", "handler", "severity", "message", "detail"} \
            <= set(doc["suppressed"][0])
        assert doc["stats"]["static"]["errors"] == 0
        assert doc["stats"]["dispatch"]["pairs_enumerated"] > 80
        names = {row["name"] for row in doc["inventory"]}
        assert {"h_get", "h_getx", "h_put", "h_reply_data_ex"} <= names

    def test_model_stats_present_when_run(self, tmp_path, capsys):
        assert run_analyze(tmp_path, "--json") == 0
        doc = json.loads(capsys.readouterr().out)
        model = doc["stats"]["model"]
        assert model["nodes"] == 2
        assert model["states"] > 1000
        assert model["truncated"] is False


class TestInventory:
    def test_write_inventory(self, tmp_path, capsys):
        target = tmp_path / "handlers.md"
        assert main(["analyze", "--write-inventory", str(target)]) == 0
        text = target.read_text()
        assert "| h_get |" in text and "| h_reply_wb_ack |" in text
        assert "Auto-generated" in text

    def test_committed_inventory_is_not_stale(self):
        from repro.protocol import extensions
        from repro.protocol.handlers import build_handler_table

        from repro.analyze.absint import run_static_pass
        from repro.analyze.inventory import render_inventory

        table = build_handler_table()
        extensions.install(table)
        _, inventory = run_static_pass(table)
        committed = (REPO_ROOT / "docs" / "handlers.md").read_text()
        assert committed == render_inventory(inventory), (
            "docs/handlers.md is stale; regenerate with "
            "`python -m repro analyze --write-inventory`"
        )


class TestCounterexampleReplay:
    def test_artifact_replays_through_fuzz_cli(
        self, tmp_path, capsys, monkeypatch
    ):
        install_skipped_intervention_bug(monkeypatch)
        assert run_analyze(tmp_path, "--no-model") == 0  # static passes miss it
        assert run_analyze(tmp_path) == 1  # the model checker does not
        artifacts = list((tmp_path / "artifacts").glob("model_*.json"))
        assert artifacts, "violation must write a counterexample artifact"
        doc = json.loads(artifacts[0].read_text())
        assert doc["status"] in ("violation", "deadlock")
        assert doc["trace_tail"], "artifact must carry the model trace"
        capsys.readouterr()

        # While the bug is installed, the recorded ops reproduce the
        # failure on the real machine...
        assert main(["fuzz", "--replay", str(artifacts[0])]) == 0
        assert "reproduced" in capsys.readouterr().out

    def test_fixed_table_no_longer_reproduces(self, tmp_path, capsys):
        with pytest.MonkeyPatch.context() as mp:
            install_skipped_intervention_bug(mp)
            assert run_analyze(tmp_path) == 1
        artifacts = list((tmp_path / "artifacts").glob("model_*.json"))
        assert artifacts
        capsys.readouterr()
        # ...and with the shipped (fixed) table, replay reports
        # non-reproduction instead of crashing.
        assert main(["fuzz", "--replay", str(artifacts[0])]) == 3
        assert "did NOT reproduce" in capsys.readouterr().out
