"""Figure 2: single node, 1-way

Five machine models on a single-node machine with one application thread.
Regenerates the figure's series: for every machine model and
application, the execution time normalized to Base with the
memory-stall fraction — the textual form of the paper's stacked bars.
"""

from _harness import (
    ALL_APPS,
    MODELS,
    check_shapes,
    normalized_rows,
    print_figure,
)


def test_fig02_single_node_1way(benchmark):
    rows = benchmark.pedantic(
        lambda: normalized_rows(ALL_APPS, MODELS, n_nodes=1, ways=1),
        rounds=1,
        iterations=1,
    )
    print_figure("Figure 2: single node, 1-way", rows, MODELS)
    for problem in check_shapes(rows, MODELS):
        print("SHAPE WARNING:", problem)
