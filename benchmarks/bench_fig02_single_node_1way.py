"""Figure 2: single node, 1-way

Five machine models on a single-node machine with one application thread.
The whole (model x app) grid is prefetched through the parallel sweep
runner before the rows are formatted; regenerates the figure's series —
for every machine model and application, the execution time normalized
to Base with the memory-stall fraction — the textual form of the
paper's stacked bars.
"""

from _harness import figure_bench


def test_fig02_single_node_1way(benchmark):
    figure_bench(benchmark, "Figure 2: single node, 1-way", n_nodes=1, ways=1, all_apps=True)
