"""Figure 9: 32 nodes, 2-way (64 threads)

Five machine models across a 32-node DSM, two application threads per node.
Regenerates the figure's series: for every machine model and
application, the execution time normalized to Base with the
memory-stall fraction — the textual form of the paper's stacked bars.
"""

from _harness import (
    apps_for_matrix,
    MODELS,
    check_shapes,
    normalized_rows,
    print_figure,
)


def test_fig09_32node_2way(benchmark):
    rows = benchmark.pedantic(
        lambda: normalized_rows(apps_for_matrix(), MODELS, n_nodes=32, ways=2),
        rounds=1,
        iterations=1,
    )
    print_figure("Figure 9: 32 nodes, 2-way (64 threads)", rows, MODELS)
    for problem in check_shapes(rows, MODELS):
        print("SHAPE WARNING:", problem)
