"""Table 5: 16-node self-relative speedups under the Base model.

For each application: run single-node 1-way as the reference, then
16 nodes at 1/2/4 application threads per node, and print
``reference_cycles / parallel_cycles`` exactly as Table 5 does.

At ~100x-scaled problem sizes the communication-to-computation ratio
is far harsher than the paper's, so absolute speedups are compressed
(see EXPERIMENTS.md); the per-application ordering and the 1-way vs
2-way trend are the comparable shapes.
"""

import os

from _harness import apps_for_matrix, run_config
from repro.sim.report import speedup_table

MODEL = "base"
WAYS = (1, 2, 4)
# One preset for both the single-node reference and the 16-node runs —
# a self-relative speedup must hold the problem size fixed.
PRESET = os.environ.get("REPRO_BENCH_PRESET", "tiny")


def speedups(model):
    results = {}
    for app in apps_for_matrix():
        ref = run_config(app, model, n_nodes=1, ways=1, preset=PRESET)
        results[app] = {
            w: ref["cycles"]
            / run_config(app, model, n_nodes=16, ways=w, preset=PRESET)["cycles"]
            for w in WAYS
        }
    return results


def test_table5_speedup_base(benchmark):
    results = benchmark.pedantic(lambda: speedups(MODEL), rounds=1, iterations=1)
    print(f"\n=== Table 5: 16-node speedup in Base ===")
    print(speedup_table(results, WAYS))
