"""Table 5: 16-node self-relative speedups under the Base model.

For each application: run single-node 1-way as the reference, then
16 nodes at 1/2/4 application threads per node, and print
``reference_cycles / parallel_cycles`` exactly as Table 5 does.  The
reference and parallel cells are prefetched in one parallel sweep.

At ~100x-scaled problem sizes the communication-to-computation ratio
is far harsher than the paper's, so absolute speedups are compressed
(see EXPERIMENTS.md); the per-application ordering and the 1-way vs
2-way trend are the comparable shapes.
"""

from _harness import speedup_results
from repro.sim.report import speedup_table

WAYS = (1, 2, 4)


def test_table5_speedup_base(benchmark):
    results = benchmark.pedantic(
        lambda: speedup_results("base", ways=WAYS), rounds=1, iterations=1
    )
    print("\n=== Table 5: 16-node speedup in Base ===")
    print(speedup_table(results, WAYS))
