"""Figure 5: 16 nodes, 1-way

The 16-node matrix with one application thread per node.
The whole (model x app) grid is prefetched through the parallel sweep
runner before the rows are formatted; regenerates the figure's series —
for every machine model and application, the execution time normalized
to Base with the memory-stall fraction — the textual form of the
paper's stacked bars.
"""

from _harness import figure_bench


def test_fig05_16node_1way(benchmark):
    figure_bench(benchmark, "Figure 5: 16 nodes, 1-way", n_nodes=16, ways=1)
