"""Design-choice ablations called out in the paper's §2.

* Look-Ahead Scheduling on/off (paper: LAS buys up to 3.9%).
* Special bit-manipulation ALU ops vs software loops (paper: <0.3%
  mean, <=0.8% worst case without them).
* Private perfect protocol caches (paper: isolates cache pollution —
  0.9-3.2% typical, 5.1% worst case).
"""

from _harness import apps_for_matrix, cell, prefetch, run_config
from repro.sim.report import format_table

NODES, WAYS = 2, 1


def _deltas(**flags):
    """Percent slowdown of the flagged SMTp variant vs the reference,
    per application; reference and variant cells are prefetched in one
    parallel sweep (the reference is shared by all three ablations)."""
    apps = apps_for_matrix()
    prefetch(
        [cell(app, "smtp", NODES, WAYS) for app in apps]
        + [cell(app, "smtp", NODES, WAYS, **flags) for app in apps]
    )
    out = {}
    for app in apps:
        ref = run_config(app, "smtp", NODES, WAYS)["cycles"]
        var = run_config(app, "smtp", NODES, WAYS, **flags)["cycles"]
        out[app] = (var / ref - 1) * 100
    return out


def test_ablation_las(benchmark):
    deltas = benchmark.pedantic(
        lambda: _deltas(look_ahead_scheduling=False), rounds=1, iterations=1,
    )
    print("\n=== Ablation: Look-Ahead Scheduling disabled ===")
    print("(positive = slower without LAS; paper: LAS helps up to 3.9%)")
    rows = [[a, f"{d:+.2f}%"] for a, d in deltas.items()]
    print(format_table(["App.", "slowdown without LAS"], rows))


def test_ablation_bitops(benchmark):
    deltas = benchmark.pedantic(
        lambda: _deltas(protocol_bitops=False), rounds=1, iterations=1,
    )
    print("\n=== Ablation: popcount/ctz as software loops ===")
    print("(paper: <0.3% average, <=0.8% worst case)")
    rows = [[a, f"{d:+.2f}%"] for a, d in deltas.items()]
    print(format_table(["App.", "slowdown without bit ops"], rows))


def test_ablation_perfect_protocol_caches(benchmark):
    deltas = benchmark.pedantic(
        lambda: _deltas(perfect_protocol_caches=True), rounds=1, iterations=1,
    )
    print("\n=== Ablation: private perfect protocol caches ===")
    print("(negative = faster with perfect caches; paper: 0.9-5.1%)")
    rows = [[a, f"{d:+.2f}%"] for a, d in deltas.items()]
    print(format_table(["App.", "delta with perfect caches"], rows))
