"""Table 9: peak active protocol-thread resource occupancy,
16-node 1-way SMTp.

Per application: the peak (and mean-of-peaks across nodes) protocol-
thread occupancy of the branch stack, integer registers, integer
queue, and load/store queue.  The paper's striking observation — the
protocol thread's *peak* footprint is large (e.g. all 32 IQ entries)
even though its time-average activity is tiny — should reproduce.
"""

from _harness import apps_for_matrix, grid_results
from repro.sim.report import format_table

RESOURCES = ("branch_stack", "int_regs", "int_queue", "lsq")


def peaks():
    results = grid_results(apps_for_matrix(), ("smtp",), n_nodes=16, ways=1)
    return {app: per["smtp"]["peaks"] for app, per in results.items()}


def test_table9_resource_occupancy(benchmark):
    results = benchmark.pedantic(peaks, rounds=1, iterations=1)
    print("\n=== Table 9: active protocol thread occupancy (16 nodes, 1-way) ===")
    rows = []
    for app, per in results.items():
        cells = [app]
        for res in RESOURCES:
            mx, mean = per[res]
            cells.append(f"{mx}, {mean:.0f}")
        rows.append(cells)
    print(format_table(["App.", "Br. Stack", "Int. Regs", "IQ", "LSQ"], rows))
