"""Figure 7: 16 nodes, 4-way (64 threads)

The 16-node matrix with four application threads per node.
The whole (model x app) grid is prefetched through the parallel sweep
runner before the rows are formatted; regenerates the figure's series —
for every machine model and application, the execution time normalized
to Base with the memory-stall fraction — the textual form of the
paper's stacked bars.
"""

from _harness import figure_bench


def test_fig07_16node_4way(benchmark):
    figure_bench(benchmark, "Figure 7: 16 nodes, 4-way (64 threads)", n_nodes=16, ways=4)
