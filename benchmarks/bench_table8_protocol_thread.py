"""Table 8: protocol-thread characteristics, 16-node 1-way SMTp.

Per application: protocol branch misprediction rate, the fraction of
cycles the graduation unit freed squashed protocol instructions, and
retired protocol instructions as a share of all retired instructions.

Expected shapes vs the paper: high prediction accuracy for the
memory-intensive applications (their handlers re-run constantly and
train the predictor), poor accuracy for water (undertrained), and tiny
squash fractions.  The retired-instruction *share* runs far above the
paper's 0.2-8% because the scaled workloads execute ~100x fewer
application instructions per miss (EXPERIMENTS.md).
"""

from _harness import apps_for_matrix, grid_results
from repro.sim.report import format_table


def characteristics():
    results = grid_results(apps_for_matrix(), ("smtp",), n_nodes=16, ways=1)
    return {app: per["smtp"] for app, per in results.items()}


def test_table8_protocol_thread(benchmark):
    results = benchmark.pedantic(characteristics, rounds=1, iterations=1)
    print("\n=== Table 8: protocol thread characteristics (16 nodes, 1-way) ===")
    rows = [
        [
            app,
            f"{100 * r['br_mispredict']:.2f}%",
            f"{100 * r['squash_fraction']:.2f}%",
            f"{100 * r['retired_share']:.2f}% of all",
        ]
        for app, r in results.items()
    ]
    print(format_table(["App.", "Br.Mis. Rate", "Squash %", "Retired Ins."], rows))
