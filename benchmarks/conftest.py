"""Make the benchmark helpers importable when pytest runs from the
repository root (`pytest benchmarks/ --benchmark-only`)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
