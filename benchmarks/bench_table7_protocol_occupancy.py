"""Table 7: peak protocol occupancy, 16-node 1-way machines.

For Base / IntPerfect / Int512KB / SMTp: the busiest node's protocol
engine (or protocol thread) activity as a percentage of execution
time.  The four-model grid is prefetched in one parallel sweep and —
thanks to content-addressed caching — shares its 16-node runs with
Figures 5-7.  Expected shape (the paper's): Base >> Int512KB >= SMTp >
IntPerfect, and memory-intensive applications (fft, radix) far above
compute-intensive ones (lu, water).
"""

from _harness import apps_for_matrix, grid_results
from repro.sim.report import format_table

MODELS = ("base", "intperfect", "int512kb", "smtp")


def occupancies():
    results = grid_results(apps_for_matrix(), MODELS, n_nodes=16, ways=1)
    return {
        app: {m: per[m]["occupancy_peak"] for m in MODELS}
        for app, per in results.items()
    }


def test_table7_protocol_occupancy(benchmark):
    results = benchmark.pedantic(occupancies, rounds=1, iterations=1)
    print("\n=== Table 7: 16-node protocol occupancy (1-way nodes) ===")
    rows = [
        [app] + [f"{100 * per[m]:.1f}%" for m in MODELS]
        for app, per in results.items()
    ]
    print(format_table(["App."] + ["Base", "IntPerf.", "Int512KB", "SMTp"], rows))
    for app, per in results.items():
        if not per["base"] >= per["int512kb"] * 0.8:
            print(f"SHAPE WARNING: {app}: Base occupancy not highest")
