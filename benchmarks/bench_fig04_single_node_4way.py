"""Figure 4: single node, 4-way

Five machine models on a single-node machine with four application threads.
Regenerates the figure's series: for every machine model and
application, the execution time normalized to Base with the
memory-stall fraction — the textual form of the paper's stacked bars.
"""

from _harness import (
    ALL_APPS,
    MODELS,
    check_shapes,
    normalized_rows,
    print_figure,
)


def test_fig04_single_node_4way(benchmark):
    rows = benchmark.pedantic(
        lambda: normalized_rows(ALL_APPS, MODELS, n_nodes=1, ways=4),
        rounds=1,
        iterations=1,
    )
    print_figure("Figure 4: single node, 4-way", rows, MODELS)
    for problem in check_shapes(rows, MODELS):
        print("SHAPE WARNING:", problem)
