"""Figure 11: 8 nodes, 1-way, 2 GHz

Clock-scaling companion: the 8-node matrix at the default 2 GHz.
The whole (model x app) grid is prefetched through the parallel sweep
runner before the rows are formatted; regenerates the figure's series —
for every machine model and application, the execution time normalized
to Base with the memory-stall fraction — the textual form of the
paper's stacked bars.
"""

from _harness import figure_bench


def test_fig11_8node_2ghz(benchmark):
    figure_bench(benchmark, "Figure 11: 8 nodes, 1-way, 2 GHz", n_nodes=8, ways=1, freq_ghz=2.0)
