"""Figure 11: 8 nodes, 1-way, 2 GHz

Clock-scaling companion: the same 8-node matrix at 2 GHz.
Regenerates the figure's series: for every machine model and
application, the execution time normalized to Base with the
memory-stall fraction — the textual form of the paper's stacked bars.
"""

from _harness import (
    apps_for_matrix,
    MODELS,
    check_shapes,
    normalized_rows,
    print_figure,
)


def test_fig11_8node_2ghz(benchmark):
    rows = benchmark.pedantic(
        lambda: normalized_rows(apps_for_matrix(), MODELS, n_nodes=8, ways=1, freq_ghz=2.0),
        rounds=1,
        iterations=1,
    )
    print_figure("Figure 11: 8 nodes, 1-way, 2 GHz", rows, MODELS)
    for problem in check_shapes(rows, MODELS):
        print("SHAPE WARNING:", problem)
