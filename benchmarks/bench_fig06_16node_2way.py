"""Figure 6: 16 nodes, 2-way

Five machine models across a 16-node DSM, two application threads per node.
Regenerates the figure's series: for every machine model and
application, the execution time normalized to Base with the
memory-stall fraction — the textual form of the paper's stacked bars.
"""

from _harness import (
    apps_for_matrix,
    MODELS,
    check_shapes,
    normalized_rows,
    print_figure,
)


def test_fig06_16node_2way(benchmark):
    rows = benchmark.pedantic(
        lambda: normalized_rows(apps_for_matrix(), MODELS, n_nodes=16, ways=2),
        rounds=1,
        iterations=1,
    )
    print_figure("Figure 6: 16 nodes, 2-way", rows, MODELS)
    for problem in check_shapes(rows, MODELS):
        print("SHAPE WARNING:", problem)
