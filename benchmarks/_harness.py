"""Shared harness for the per-table/per-figure benchmarks.

Every benchmark regenerates one of the paper's tables or figures by
running the relevant configuration matrix and printing the rows the
paper prints.  Runs are memoized on disk (``benchmarks/.bench_cache.json``)
so Table 7 can reuse Figure 5's 16-node runs, and a re-invocation of
the suite is incremental.  Delete the cache file or set
``REPRO_BENCH_REFRESH=1`` to force re-simulation.

Environment knobs:

``REPRO_BENCH_PRESET``
    Override the workload preset everywhere (default: ``bench`` for
    single-node matrices, ``tiny`` for >= 8-node matrices — see
    DESIGN.md on scaling).
``REPRO_BENCH_FULL=1``
    Run all six applications in the large multi-node matrices instead
    of the default representative trio (fft / lu / radix).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from repro.sim.driver import run_app

CACHE_PATH = Path(__file__).parent / ".bench_cache.json"

ALL_APPS = ("fft", "fftw", "lu", "ocean", "radix", "water")
TRIO = ("fft", "lu", "radix")
MODELS = ("base", "intperfect", "int512kb", "int64kb", "smtp")


def apps_for_matrix() -> tuple:
    if os.environ.get("REPRO_BENCH_FULL"):
        return ALL_APPS
    return TRIO


def preset_for(n_nodes: int) -> str:
    env = os.environ.get("REPRO_BENCH_PRESET")
    if env:
        return env
    return "bench" if n_nodes < 8 else "tiny"


class Result(dict):
    """JSON-serializable scalar summary of one run."""

    @property
    def cycles(self) -> int:
        return self["cycles"]


def _summarize(st) -> Result:
    peaks = st.resource_peaks()
    return Result(
        cycles=st.cycles,
        committed=st.committed,
        memory_stall_fraction=st.memory_stall_fraction,
        occupancy_peak=st.protocol_occupancy_peak(),
        occupancy_mean=st.protocol_occupancy_mean(),
        br_mispredict=st.protocol_branch_mispredict_rate(),
        squash_fraction=st.protocol_squash_cycle_fraction(),
        retired_share=st.retired_protocol_share(),
        peaks={k: list(v) for k, v in peaks.items()},
        protocol_instructions=st.protocol_instructions,
    )


def _load_cache() -> Dict[str, dict]:
    if os.environ.get("REPRO_BENCH_REFRESH"):
        return {}
    if CACHE_PATH.exists():
        try:
            return json.loads(CACHE_PATH.read_text())
        except (OSError, json.JSONDecodeError):
            return {}
    return {}


def _store_cache(cache: Dict[str, dict]) -> None:
    CACHE_PATH.write_text(json.dumps(cache, indent=0, sort_keys=True))


def run_config(
    app: str,
    model: str,
    n_nodes: int,
    ways: int,
    freq_ghz: float = 2.0,
    preset: Optional[str] = None,
    **flags,
) -> Result:
    preset = preset or preset_for(n_nodes)
    key = json.dumps(
        [app, model, n_nodes, ways, freq_ghz, preset, sorted(flags.items())]
    )
    cache = _load_cache()
    if key in cache:
        return Result(cache[key])
    st = run_app(
        app, model, n_nodes=n_nodes, ways=ways, freq_ghz=freq_ghz,
        preset=preset, **flags,
    )
    result = _summarize(st)
    cache = _load_cache()  # re-read: parallel workers may have added keys
    cache[key] = dict(result)
    _store_cache(cache)
    return result


def normalized_rows(
    apps, models, n_nodes: int, ways: int, freq_ghz: float = 2.0
) -> List[list]:
    """Figure-style rows: normalized exec time + memory-stall split."""
    rows = []
    for app in apps:
        per_model = {
            m: run_config(app, m, n_nodes, ways, freq_ghz) for m in models
        }
        base = per_model[models[0]]["cycles"]
        row = [app]
        for m in models:
            r = per_model[m]
            row.append(
                f"{r['cycles'] / base:.3f} (mem {r['memory_stall_fraction']:.2f})"
            )
        rows.append(row)
    return rows


def print_figure(title: str, rows: List[list], models) -> None:
    from repro.sim.report import MODEL_LABELS, format_table

    print(f"\n=== {title} ===")
    print("(normalized execution time, memory-stall fraction in parens)")
    headers = ["App"] + [MODEL_LABELS[m] for m in models]
    print(format_table(headers, rows))


def check_shapes(rows: List[list], models) -> List[str]:
    """Verify the paper's headline orderings; returns violations
    (reported, not asserted — shapes are expectations, not unit
    tests)."""
    problems = []
    idx = {m: i + 1 for i, m in enumerate(models)}

    def norm(row, m):
        return float(row[idx[m]].split()[0])

    for row in rows:
        app = row[0]
        if "smtp" in idx and "base" in idx:
            if norm(row, "smtp") > 1.0:
                problems.append(f"{app}: SMTp slower than Base")
        if "intperfect" in idx and norm(row, "intperfect") > 1.0:
            problems.append(f"{app}: IntPerfect slower than Base")
    return problems
