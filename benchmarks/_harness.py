"""Shared harness for the per-table/per-figure benchmarks.

Every benchmark regenerates one of the paper's tables or figures by
running the relevant configuration matrix and printing the rows the
paper prints.  The matrices are executed through
:mod:`repro.sim.sweep`: each bench first *prefetches* its whole grid —
cache misses fan out across a ``multiprocessing`` worker pool — and
then reads the per-cell summaries back from the on-disk cache
(``benchmarks/.sweep_cache/``, one JSON file per cell, keyed by a
content hash of the machine parameters, workload sizes and simulator
sources; see ``benchmarks/README.md``).  Re-invocations of the suite
are incremental, Table 7 reuses Figure 5's 16-node runs, and a sweep
survives individual cells failing.

Environment knobs:

``REPRO_BENCH_JOBS``
    Worker processes for the sweep (default: CPU count; ``0`` runs
    inline in this process).
``REPRO_BENCH_PRESET``
    Override the workload preset everywhere (default: ``bench`` for
    single-node matrices, ``tiny`` for >= 8-node matrices — see
    DESIGN.md on scaling).
``REPRO_BENCH_FULL=1``
    Run all six applications in the large multi-node matrices instead
    of the default representative trio (fft / lu / radix).
``REPRO_BENCH_REFRESH=1``
    Ignore previously cached cells (they are re-simulated and the
    cache is rewritten in place).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional

from repro.sim.sweep import ResultCache, SweepCell, run_sweep

CACHE_DIR = Path(__file__).parent / ".sweep_cache"

ALL_APPS = ("fft", "fftw", "lu", "ocean", "radix", "water")
TRIO = ("fft", "lu", "radix")
MODELS = ("base", "intperfect", "int512kb", "int64kb", "smtp")

CACHE = ResultCache(
    CACHE_DIR, refresh=bool(os.environ.get("REPRO_BENCH_REFRESH"))
)


def apps_for_matrix() -> tuple:
    if os.environ.get("REPRO_BENCH_FULL"):
        return ALL_APPS
    return TRIO


def preset_for(n_nodes: int) -> str:
    env = os.environ.get("REPRO_BENCH_PRESET")
    if env:
        return env
    return "bench" if n_nodes < 8 else "tiny"


def sweep_jobs() -> int:
    env = os.environ.get("REPRO_BENCH_JOBS")
    if env is not None:
        return int(env)
    return os.cpu_count() or 1


class Result(dict):
    """JSON-serializable scalar summary of one run."""

    @property
    def cycles(self) -> int:
        return self["cycles"]


def cell(
    app: str,
    model: str,
    n_nodes: int,
    ways: int,
    freq_ghz: float = 2.0,
    preset: Optional[str] = None,
    **flags,
) -> SweepCell:
    return SweepCell.make(
        app, model, n_nodes=n_nodes, ways=ways, freq_ghz=freq_ghz,
        preset=preset or preset_for(n_nodes), **flags,
    )


def prefetch(cells: List[SweepCell]) -> None:
    """Fill the cache for ``cells``, fanning misses out over workers.

    Failures are tolerated here — they surface as exceptions from
    :func:`run_config` only if a bench actually reads the failed cell.
    """
    run_sweep(cells, jobs=sweep_jobs(), cache=CACHE, progress=print)


def run_config(
    app: str,
    model: str,
    n_nodes: int,
    ways: int,
    freq_ghz: float = 2.0,
    preset: Optional[str] = None,
    **flags,
) -> Result:
    """One cell's summary, from cache if possible (inline run if not)."""
    c = cell(app, model, n_nodes, ways, freq_ghz, preset, **flags)
    result = run_sweep([c], jobs=0, cache=CACHE)[0]
    if not result.ok:
        raise RuntimeError(
            f"{c.label}: {result.error_type}: {result.error}"
        )
    return Result(result.stats)


def grid_results(
    apps, models, n_nodes: int, ways: int, freq_ghz: float = 2.0,
    preset: Optional[str] = None,
) -> Dict[str, Dict[str, Result]]:
    """Run an apps x models matrix in parallel; results[app][model]."""
    prefetch(
        [cell(a, m, n_nodes, ways, freq_ghz, preset) for a in apps for m in models]
    )
    return {
        a: {m: run_config(a, m, n_nodes, ways, freq_ghz, preset) for m in models}
        for a in apps
    }


def normalized_rows(
    apps, models, n_nodes: int, ways: int, freq_ghz: float = 2.0
) -> List[list]:
    """Figure-style rows: normalized exec time + memory-stall split."""
    results = grid_results(apps, models, n_nodes, ways, freq_ghz)
    rows = []
    for app in apps:
        per_model = results[app]
        base = per_model[models[0]]["cycles"]
        row = [app]
        for m in models:
            r = per_model[m]
            row.append(
                f"{r['cycles'] / base:.3f} (mem {r['memory_stall_fraction']:.2f})"
            )
        rows.append(row)
    return rows


def speedup_results(
    model: str, ways=(1, 2, 4), n_nodes: int = 16, preset: Optional[str] = None
) -> Dict[str, Dict[int, float]]:
    """Tables 5/6: self-relative speedups vs the 1-node 1-way run.

    One preset for both the reference and the parallel runs — a
    self-relative speedup must hold the problem size fixed.
    """
    preset = preset or os.environ.get("REPRO_BENCH_PRESET", "tiny")
    apps = apps_for_matrix()
    prefetch(
        [cell(a, model, 1, 1, preset=preset) for a in apps]
        + [cell(a, model, n_nodes, w, preset=preset) for a in apps for w in ways]
    )
    results = {}
    for app in apps:
        ref = run_config(app, model, 1, 1, preset=preset)
        results[app] = {
            w: ref["cycles"]
            / run_config(app, model, n_nodes, w, preset=preset)["cycles"]
            for w in ways
        }
    return results


def figure_bench(
    benchmark, title: str, n_nodes: int, ways: int,
    freq_ghz: float = 2.0, all_apps: bool = False,
) -> List[list]:
    """The shared body of every Figure 2-11 bench."""
    apps = ALL_APPS if all_apps else apps_for_matrix()
    rows = benchmark.pedantic(
        lambda: normalized_rows(apps, MODELS, n_nodes=n_nodes, ways=ways,
                                freq_ghz=freq_ghz),
        rounds=1,
        iterations=1,
    )
    print_figure(title, rows, MODELS)
    for problem in check_shapes(rows, MODELS):
        print("SHAPE WARNING:", problem)
    return rows


def print_figure(title: str, rows: List[list], models) -> None:
    from repro.sim.report import MODEL_LABELS, format_table

    print(f"\n=== {title} ===")
    print("(normalized execution time, memory-stall fraction in parens)")
    headers = ["App"] + [MODEL_LABELS[m] for m in models]
    print(format_table(headers, rows))


def check_shapes(rows: List[list], models) -> List[str]:
    """Verify the paper's headline orderings; returns violations
    (reported, not asserted — shapes are expectations, not unit
    tests)."""
    problems = []
    idx = {m: i + 1 for i, m in enumerate(models)}

    def norm(row, m):
        return float(row[idx[m]].split()[0])

    for row in rows:
        app = row[0]
        if "smtp" in idx and "base" in idx:
            if norm(row, "smtp") > 1.0:
                problems.append(f"{app}: SMTp slower than Base")
        if "intperfect" in idx and norm(row, "intperfect") > 1.0:
            problems.append(f"{app}: IntPerfect slower than Base")
    return problems
