"""Figure 10: 8 nodes, 1-way, 4 GHz

Clock scaling: the 8-node matrix at a 4 GHz processor clock.
Regenerates the figure's series: for every machine model and
application, the execution time normalized to Base with the
memory-stall fraction — the textual form of the paper's stacked bars.
"""

from _harness import (
    apps_for_matrix,
    MODELS,
    check_shapes,
    normalized_rows,
    print_figure,
)


def test_fig10_8node_4ghz(benchmark):
    rows = benchmark.pedantic(
        lambda: normalized_rows(apps_for_matrix(), MODELS, n_nodes=8, ways=1, freq_ghz=4.0),
        rounds=1,
        iterations=1,
    )
    print_figure("Figure 10: 8 nodes, 1-way, 4 GHz", rows, MODELS)
    for problem in check_shapes(rows, MODELS):
        print("SHAPE WARNING:", problem)
