"""Figure 10: 8 nodes, 1-way, 4 GHz

Clock scaling: the 8-node matrix at a 4 GHz processor clock.
The whole (model x app) grid is prefetched through the parallel sweep
runner before the rows are formatted; regenerates the figure's series —
for every machine model and application, the execution time normalized
to Base with the memory-stall fraction — the textual form of the
paper's stacked bars.
"""

from _harness import figure_bench


def test_fig10_8node_4ghz(benchmark):
    figure_bench(benchmark, "Figure 10: 8 nodes, 1-way, 4 GHz", n_nodes=8, ways=1, freq_ghz=4.0)
