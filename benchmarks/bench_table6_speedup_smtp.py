"""Table 6: 16-node self-relative speedups under SMTp.

Same protocol as Table 5's bench but with the protocol thread running
on the main pipeline.  The paper's comparable shape: SMTp speedups
track Base's closely (self-relative numbers are not a cross-model
comparison), and 2-way generally beats 1-way.
"""

from _harness import speedup_results
from bench_table5_speedup_base import WAYS
from repro.sim.report import speedup_table


def test_table6_speedup_smtp(benchmark):
    results = benchmark.pedantic(
        lambda: speedup_results("smtp", ways=WAYS), rounds=1, iterations=1
    )
    print("\n=== Table 6: 16-node speedup in SMTp ===")
    print(speedup_table(results, WAYS))
