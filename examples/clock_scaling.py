#!/usr/bin/env python3
"""Clock-rate scaling study (the paper's §4.2, Figures 10/11).

Runs one application across the machine models at 2 GHz and 4 GHz
processor clocks.  The paper's finding: the performance trends are
unchanged as the processor-memory gap widens, and the integrated
models (SMTp included) pull further ahead of Base.

Run:  python examples/clock_scaling.py [app]
"""

import sys

from repro import run_app
from repro.sim.report import MODEL_LABELS, format_table

MODELS = ("base", "int512kb", "smtp")


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "fft"
    print(f"Clock scaling on {app}, 2-node 1-way machines\n")
    results = {}
    for freq in (2.0, 4.0):
        for model in MODELS:
            print(f"  running {MODEL_LABELS[model]} at {freq:g} GHz ...")
            results[(model, freq)] = run_app(
                app, model, n_nodes=2, ways=1, preset="bench", freq_ghz=freq
            )
    print()
    rows = []
    for model in MODELS:
        r2 = results[(model, 2.0)]
        r4 = results[(model, 4.0)]
        norm2 = r2.cycles / results[("base", 2.0)].cycles
        norm4 = r4.cycles / results[("base", 4.0)].cycles
        rows.append(
            [
                MODEL_LABELS[model],
                f"{norm2:.3f}",
                f"{norm4:.3f}",
                f"{r4.cycles / r2.cycles:.2f}x",
            ]
        )
    print(
        format_table(
            ["Model", "norm. @2GHz", "norm. @4GHz", "cycle growth"],
            rows,
        )
    )
    print(
        "\nExpected shape: normalized times vs Base shrink (or hold) at "
        "4 GHz — integration matters more as the memory gap widens."
    )


if __name__ == "__main__":
    main()
