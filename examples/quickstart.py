#!/usr/bin/env python3
"""Quickstart: run one workload on an SMTp machine and read the stats.

Builds a 4-node SMTp DSM (each node an out-of-order SMT core with two
application threads plus the protocol thread), runs the scaled FFT
workload, and prints the quantities the paper reports: execution time,
the memory-stall split, and protocol-thread activity.

Run:  python examples/quickstart.py
"""

from repro import run_app
from repro.sim.report import summarize


def main() -> None:
    print("Running FFT on a 4-node, 2-way SMTp machine...")
    stats = run_app(
        "fft",            # one of: fft, fftw, lu, ocean, radix, water
        "smtp",           # one of: base, intperfect, int512kb, int64kb, smtp
        n_nodes=4,
        ways=2,           # application threads per node
        preset="bench",   # scaled problem size (tiny / bench / default)
    )

    print()
    print(summarize(stats))
    print()
    print("Per-node protocol-thread activity:")
    for node in stats.nodes:
        p = node.protocol
        print(
            f"  node {node.node}: {p.handlers} handlers, "
            f"{p.instructions} protocol instructions retired, "
            f"busy {100 * p.busy_cycles / stats.cycles:.1f}% of run, "
            f"branch misprediction {100 * p.mispredict_rate:.1f}%"
        )

    print()
    print("Most frequent handlers (node 0):")
    by_type = stats.nodes[0].protocol.handlers_by_type
    for name, count in sorted(by_type.items(), key=lambda kv: -kv[1])[:6]:
        print(f"  {name:20s} {count}")


if __name__ == "__main__":
    main()
