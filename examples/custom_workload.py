#!/usr/bin/env python3
"""Write your own workload against the public API.

Builds a producer/consumer pipeline with a lock-protected work queue —
a communication pattern none of the six paper workloads has — and runs
it on both Base and SMTp machines.  Demonstrates:

* KernelBuilder dataflow (loads/stores/FP ops returning register ids),
* spin/atomic feedback (``yield AWAIT``),
* the shared runtime (barriers, locks, placement),
* installing programs on a machine by hand (no preset involved).

Run:  python examples/custom_workload.py
"""

from repro import Machine, make_machine_params
from repro.apps.base import AppContext
from repro.apps.program import AWAIT
from repro.apps.runtime import SpinLock, spin_until
from repro.sim.driver import run_machine
from repro.sim.report import summarize

N_ITEMS = 24
WORD = 8


def build_sources(machine):
    ctx = AppContext(machine)
    queue = ctx.space.alloc(0, N_ITEMS * WORD)  # work items, homed node 0
    head = ctx.space.alloc(0, 128)  # queue head index
    open_flag = ctx.space.alloc(0, 128)
    lock = SpinLock(ctx.space, node=0)
    results = ctx.space.alloc(ctx.n_nodes - 1, 128)  # sink, remote home

    def body(k, g):
        yield from ctx.barrier.wait(k, g)
        if g == 0:
            # Producer: publish items, then open the queue.
            for i in range(N_ITEMS):
                k.store(queue + i * WORD, value=100 + i)
                if i % 8 == 7:
                    yield
            yield
            k.store(open_flag, value=1)
            yield
        else:
            yield from spin_until(k, open_flag, lambda v: v == 1)
        # Everyone (including the producer) consumes under the lock.
        while True:
            yield from lock.acquire(k)
            k.spin_load(head)
            index = yield AWAIT
            if index >= N_ITEMS:
                lock.release(k)
                yield
                break
            k.store(head, value=index + 1)
            lock.release(k)
            yield
            # "Process" the item: load it, compute, accumulate remotely.
            item = k.load(queue + index * WORD)
            acc = k.falu(item)
            for _ in range(6):
                acc = k.falu(acc, acc)
            k.atomic(results, "fai", 1)
            done = yield AWAIT
        yield from ctx.barrier.wait(k, g)

    sources = ctx.build_sources(body)
    return sources, results


def main() -> None:
    for model in ("base", "smtp"):
        mp = make_machine_params(model, n_nodes=2, ways=2)
        machine = Machine(mp)
        sources, results_addr = build_sources(machine)
        stats = run_machine(machine, sources, max_cycles=5_000_000)
        consumed = machine.words.get(results_addr, 0)
        print(f"--- {model} ---")
        print(summarize(stats))
        print(f"items consumed: {consumed} (expected {N_ITEMS})")
        assert consumed == N_ITEMS, "queue protocol lost items!"
        print()


if __name__ == "__main__":
    main()
