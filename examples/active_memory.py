#!/usr/bin/env python3
"""Programmable protocol threads beyond coherence (paper §1/§6).

The paper's closing argument: once the coherence protocol is software
on a spare thread context, the same mechanism hosts *other* memory-
system services. This example uses the bundled active-memory
extension (`repro.protocol.extensions`): an uncached fetch-and-op that
executes in the **home node's protocol thread**, so a contended
counter never bounces a cache line between nodes.

It times a global counter hammered from every node, implemented two
ways — ordinary cached atomics vs. remote active-memory ops — on the
same 4-node machine.

Run:  python examples/active_memory.py
"""

from repro import Machine, make_machine_params
from repro.apps.base import AppContext
from repro.apps.program import AWAIT
from repro.sim.driver import run_machine

INCREMENTS = 12


def timed_counter(op: str) -> int:
    machine = Machine(make_machine_params("smtp", n_nodes=4, ways=1))
    ctx = AppContext(machine)
    counter = ctx.space.alloc(0, 128)

    def body(k, g):
        for _ in range(INCREMENTS):
            k.atomic(counter, op, 1)
            _ = yield AWAIT
            yield ("sleep", 40)  # interleave: every op re-contends
        yield from ctx.barrier.wait(k, g)

    stats = run_machine(machine, ctx.build_sources(body), max_cycles=5_000_000)
    expected = INCREMENTS * ctx.n_threads
    assert machine.words[counter] == expected, "lost increments!"
    home = machine.layout.home_of(counter)
    am_handlers = machine.nodes[home].stats.protocol.handlers_by_type.get(
        "h_am_op", 0
    )
    print(
        f"  {op:7s}: {stats.cycles:7d} cycles "
        f"(counter={machine.words[counter]}, "
        f"h_am_op handlers at home={am_handlers})"
    )
    return stats.cycles


def main() -> None:
    print(f"Global counter, 4 nodes x {INCREMENTS} increments each, "
          "every op contended:")
    cached = timed_counter("fai")  # ordinary cached atomic
    remote = timed_counter("am_fai")  # active-memory remote op
    print(
        f"\nActive-memory speedup under contention: {cached / remote:.2f}x\n"
        "The cached atomic drags an exclusive line across the machine "
        "on every operation;\nthe active-memory op sends one request "
        "and the home's protocol thread does the rest —\nthe kind of "
        "protocol-thread programmability the paper's conclusion "
        "advertises."
    )


if __name__ == "__main__":
    main()
