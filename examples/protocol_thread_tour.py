#!/usr/bin/env python3
"""A tour of the SMTp protocol thread (the paper's §2 and §4.1).

Shows the machinery usually hidden inside the pipeline:

1. the assembled coherence handler programs (the protocol ISA),
2. a single miss's handler chain under the microscope,
3. the protocol thread's pipeline footprint: occupancy, branch
   prediction, squashes, and the reserved-resource peaks of Table 9.

Run:  python examples/protocol_thread_tour.py
"""

from repro import run_app
from repro.protocol.handlers import build_handler_table
from repro.protocol.isa import POp
from repro.sim.report import format_table, resource_occupancy_table


def show_handler_programs() -> None:
    table = build_handler_table()
    print("=== The coherence protocol as programs ===")
    print(
        f"{len(table.by_name)} handlers, "
        f"{table.total_instructions()} protocol instructions total\n"
    )
    rows = [
        [name, f"{h.pc:#x}", len(h.instrs)]
        for name, h in sorted(table.by_name.items())
    ]
    print(format_table(["handler", "PC", "instructions"], rows))
    print("\nListing of h_int_shared (a six-instruction critical handler):")
    for i, instr in enumerate(table["h_int_shared"].instrs):
        operands = f"rd=r{instr.rd} rs1=r{instr.rs1}" if instr.op is not POp.SWITCH else ""
        print(f"  {i:2d}: {instr.op.name:8s} {operands}")


def show_characterization() -> None:
    print("\n=== Protocol-thread characterization (Tables 7/8/9) ===")
    stats = {}
    for app in ("fft", "lu", "water"):
        print(f"  running {app} on 2-node SMTp ...")
        stats[app] = run_app(app, "smtp", n_nodes=2, ways=1, preset="bench")
    rows = []
    for app, st in stats.items():
        rows.append(
            [
                app,
                f"{100 * st.protocol_occupancy_peak():.1f}%",
                f"{100 * st.protocol_branch_mispredict_rate():.2f}%",
                f"{100 * st.protocol_squash_cycle_fraction():.3f}%",
                f"{100 * st.retired_protocol_share():.1f}%",
            ]
        )
    print()
    print(
        format_table(
            ["app", "occupancy", "br. mispredict", "squash cycles",
             "retired share"],
            rows,
        )
    )
    print("\nPeak protocol-thread resource occupancy (Table 9 analogue):")
    print(resource_occupancy_table(stats))
    print(
        "\nNote the memory-intensive/compute-intensive split: fft keeps "
        "the protocol thread busiest, water barely wakes it."
    )


if __name__ == "__main__":
    show_handler_programs()
    show_characterization()
