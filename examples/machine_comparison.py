#!/usr/bin/env python3
"""Compare the five Table 4 machine models on one workload.

This is a miniature of the paper's Figures 2-9: run the same
application on Base (non-integrated controller), the three integrated
protocol-processor designs, and SMTp, then print normalized execution
times with the memory-stall split and the Table 7 protocol occupancy.

Run:  python examples/machine_comparison.py [app] [nodes] [ways]
      python examples/machine_comparison.py radix 2 2
"""

import sys

from repro import MODELS, run_app
from repro.sim.report import MODEL_LABELS, format_table


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "ocean"
    nodes = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    ways = int(sys.argv[3]) if len(sys.argv) > 3 else 1

    print(f"Comparing machine models on {app}, {nodes} node(s), {ways}-way")
    results = {}
    for model in MODELS:
        print(f"  running {MODEL_LABELS[model]} ...")
        results[model] = run_app(app, model, n_nodes=nodes, ways=ways,
                                 preset="bench")

    base_cycles = results["base"].cycles
    rows = []
    for model in MODELS:
        st = results[model]
        rows.append(
            [
                MODEL_LABELS[model],
                f"{st.cycles}",
                f"{st.cycles / base_cycles:.3f}",
                f"{100 * st.memory_stall_fraction:.1f}%",
                f"{100 * st.protocol_occupancy_peak():.1f}%",
            ]
        )
    print()
    print(
        format_table(
            ["Model", "Cycles", "Normalized", "Memory stall", "Protocol occ."],
            rows,
        )
    )
    print()
    smtp, int512 = results["smtp"], results["int512kb"]
    gap = 100 * (smtp.cycles / int512.cycles - 1)
    print(
        f"SMTp vs Int512KB: {gap:+.1f}% "
        "(the paper reports SMTp within a few percent, sometimes ahead)"
    )


if __name__ == "__main__":
    main()
