#!/usr/bin/env python3
"""Watch one cache line's coherence life under the microscope.

Attaches the protocol tracer to a 2-node SMTp machine and walks a
single line through the protocol: a remote write miss, a 3-hop read
(downgrade intervention at the owner, sharing writeback to home), and
an ownership upgrade with an invalidation — printing the same event
timeline a DSM architect would sketch on a whiteboard.

Run:  python examples/trace_a_miss.py
"""

from repro import Machine, make_machine_params
from repro.apps.program import KernelBuilder, ThreadProgram
from repro.sim.trace import ProtocolTracer

ADDR = 0x3000  # homed at node 0


def main() -> None:
    machine = Machine(make_machine_params("smtp", n_nodes=2, ways=1))

    def writer(k):
        k.store(ADDR, value=7)  # GETX from node 1 -> home 0
        yield

    def reader_then_writer(k):
        a = k.alu()
        for _ in range(400):  # let node 1's write land first
            a = k.alu(a)
        yield
        a = k.load(ADDR)  # 3-hop: home 0, owner 1 downgrades
        yield
        k.store(ADDR, a, value=8)  # upgrade: invalidate node 1
        yield

    machine.install_cores(
        [
            [ThreadProgram(reader_then_writer, KernelBuilder(0, 0x400000),
                           machine.wheel)],
            [ThreadProgram(writer, KernelBuilder(0, 0x500000),
                           machine.wheel)],
        ]
    )
    tracer = ProtocolTracer(machine, line=ADDR)
    machine.run(200_000)
    machine.quiesce()

    print(f"Coherence timeline of line {ADDR:#x} "
          f"(home node {machine.layout.home_of(ADDR)}):\n")
    print(tracer.render())
    print(
        f"\n{tracer.count('dispatch')} handler dispatches, "
        f"{tracer.count('send')} network messages, "
        f"{tracer.count('probe')} cache probes."
    )


if __name__ == "__main__":
    main()
