#!/usr/bin/env python
"""Docs-staleness check: documented CLI flags vs live ``--help``.

Documentation rots in two directions: a doc keeps describing a flag
that was renamed or removed, or a new flag ships without the
operator's manual learning about it.  This checker catches both by
comparing the ``--long-flag`` tokens found in the prose against the
flags argparse actually advertises:

1. **No phantom flags** — every ``--flag`` token appearing in a
   checked doc must exist in the live ``--help`` output of at least
   one of the subcommands that doc is mapped to (or be on the small
   external allowlist, e.g. pytest flags quoted in examples).

2. **No undocumented operator flags** — every flag of ``sweep`` and
   ``fuzz`` must be mentioned in ``docs/sweep-service.md``, and every
   flag of ``analyze`` in ``docs/analyze.md`` (the verifier's
   manual).  Each manual owns its commands' full flag sets.

The same two directions are enforced for ``REPRO_*`` environment
flags (the execution-mode escape hatches and bench knobs):

3. **No phantom env flags** — every ``REPRO_*`` token in a checked
   doc must be read somewhere in ``src/`` or ``benchmarks/``.

4. **No undocumented env flags** — every ``REPRO_*`` flag the code
   reads must be described in README.md or EXPERIMENTS.md.

And for ``make`` targets quoted in the docs:

5. **No phantom make targets** — every ``make <target>`` a checked
   doc quotes (inline code or shell block) must be a real target in
   the Makefile.

6. **No undocumented gate targets** — the targets on the small
   required list (the CI perf gates, e.g. ``smoke``/``fig8-smoke``)
   must exist in the Makefile *and* be described in README.md or
   EXPERIMENTS.md.

Run as ``make docs-check`` or ``python tools/check_docs.py``; exit 0
clean, 1 stale.  ``tests/test_docs.py`` wraps it so staleness also
fails tier-1.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Doc file -> repro subcommands whose flags it may legitimately cite.
DOC_COMMANDS = {
    "docs/sweep-service.md": ("sweep", "fuzz"),
    "docs/analyze.md": ("analyze", "fuzz", "sweep"),
    "docs/protocols.md": ("analyze", "fuzz", "sweep", "handlers"),
    "docs/architecture.md": ("run", "sweep", "fuzz", "analyze"),
    "EXPERIMENTS.md": ("run", "sweep", "fuzz", "analyze"),
    "README.md": ("run", "sweep", "fuzz", "analyze"),
}

# Flags that MUST be live on specific commands: protects the
# protocol-registry seam (docs/protocols.md is written against these)
# from a silent CLI regression even if every doc mention were also
# removed.
REQUIRED_FLAGS = {
    "--protocol": ("analyze", "fuzz", "sweep", "handlers"),
}

# Manual completeness: each manual must mention the full flag set of
# the commands it owns.
MANUALS = {
    "docs/sweep-service.md": ("sweep", "fuzz"),
    "docs/analyze.md": ("analyze",),
}

# Flags of *other* tools that docs may quote in examples.
ALLOWED_EXTERNAL = {
    "--help",
    "--benchmark-only",  # pytest-benchmark, used by `make bench`
    "--no-build-isolation",  # pip, quoted in the README install notes
    "--version",
}

FLAG_RE = re.compile(r"--[a-z][a-z0-9-]*")

# REPRO_* environment flags: which docs must (between them) describe
# every implemented flag, and where implementations may live.
ENV_RE = re.compile(r"\bREPRO_[A-Z][A-Z0-9_]*")
ENV_DOCS = ("README.md", "EXPERIMENTS.md")
ENV_SOURCE_DIRS = ("src", "benchmarks")

# `make <target>` mentions are only trusted in code context (inline
# backticks or a shell-block line), so prose like "make sure" never
# reads as a target reference.
MAKE_RE = re.compile(
    r"(?:`|^\s*(?:\$\s*)?)(?:REPRO_\w+=\S+\s+)*make\s+([a-z][a-z0-9-]*)",
    re.MULTILINE,
)

# Targets that must stay live in the Makefile AND be described in one
# of ENV_DOCS: the CI perf gates operators are expected to run.
REQUIRED_TARGETS = ("smoke", "fig8-smoke")


def makefile_targets() -> set[str]:
    """Every rule name defined in the top-level Makefile."""
    targets: set[str] = set()
    for line in (REPO / "Makefile").read_text().splitlines():
        match = re.match(r"^([A-Za-z0-9][A-Za-z0-9_. -]*):(?!=)", line)
        if match:
            targets |= set(match.group(1).split())
    return targets - {".PHONY"}


def implemented_env_flags() -> set[str]:
    """Every ``REPRO_*`` token the code actually reads."""
    flags: set[str] = set()
    for top in ENV_SOURCE_DIRS:
        for path in (REPO / top).rglob("*.py"):
            flags |= set(ENV_RE.findall(path.read_text()))
    return flags


def live_flags(command: str) -> set[str]:
    """The ``--long`` options argparse advertises for a subcommand."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", command, "--help"],
        capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        cwd=REPO, check=True,
    )
    return set(FLAG_RE.findall(proc.stdout))


def doc_flags(path: Path) -> set[str]:
    return set(FLAG_RE.findall(path.read_text()))


def main() -> int:
    problems: list[str] = []
    help_cache: dict[str, set[str]] = {}

    def flags_for(commands) -> set[str]:
        out: set[str] = set()
        for cmd in commands:
            if cmd not in help_cache:
                help_cache[cmd] = live_flags(cmd)
            out |= help_cache[cmd]
        return out

    # Direction 1: no phantom flags in the docs.
    for rel, commands in DOC_COMMANDS.items():
        path = REPO / rel
        if not path.exists():
            problems.append(f"{rel}: checked doc is missing")
            continue
        known = flags_for(commands) | ALLOWED_EXTERNAL
        for flag in sorted(doc_flags(path) - known):
            problems.append(
                f"{rel}: documents {flag}, which no mapped command "
                f"({', '.join(commands)}) advertises in --help"
            )

    # Direction 2: each manual covers its commands' full flag sets.
    for manual_rel, manual_commands in MANUALS.items():
        manual = REPO / manual_rel
        if not manual.exists():
            continue  # direction 1 already reported the missing doc
        documented = doc_flags(manual)
        for cmd in manual_commands:
            for flag in sorted(flags_for((cmd,)) - documented):
                if flag in ALLOWED_EXTERNAL:
                    continue
                problems.append(
                    f"{manual_rel}: `{cmd}` flag {flag} is live in "
                    f"--help but undocumented"
                )

    # Required flags: certain flags must stay live on their commands.
    for flag, commands in REQUIRED_FLAGS.items():
        for cmd in commands:
            if flag not in flags_for((cmd,)):
                problems.append(
                    f"required flag {flag} is missing from "
                    f"`repro {cmd} --help`"
                )

    # Directions 3 and 4: REPRO_* env flags, both ways.
    implemented = implemented_env_flags()
    documented_env: set[str] = set()
    for rel in DOC_COMMANDS:
        path = REPO / rel
        if not path.exists():
            continue
        found = set(ENV_RE.findall(path.read_text()))
        if rel in ENV_DOCS:
            documented_env |= found
        for flag in sorted(found - implemented):
            problems.append(
                f"{rel}: documents {flag}, which nothing under "
                f"{'/'.join(ENV_SOURCE_DIRS)} reads"
            )
    for flag in sorted(implemented - documented_env):
        problems.append(
            f"env flag {flag} is read by the code but described in "
            f"neither of {', '.join(ENV_DOCS)}"
        )

    # Directions 5 and 6: make targets, both ways.
    targets = makefile_targets()
    documented_targets: set[str] = set()
    for rel in DOC_COMMANDS:
        path = REPO / rel
        if not path.exists():
            continue
        found = set(MAKE_RE.findall(path.read_text()))
        if rel in ENV_DOCS:
            documented_targets |= found
        for target in sorted(found - targets):
            problems.append(
                f"{rel}: quotes `make {target}`, which the Makefile "
                f"does not define"
            )
    for target in REQUIRED_TARGETS:
        if target not in targets:
            problems.append(
                f"required make target `{target}` is missing from the "
                f"Makefile"
            )
        elif target not in documented_targets:
            problems.append(
                f"make target `{target}` is live but described in "
                f"neither of {', '.join(ENV_DOCS)}"
            )

    for line in problems:
        print(f"docs-check: {line}")
    if problems:
        print(f"docs-check: {len(problems)} stale reference(s)")
        return 1
    checked = ", ".join(sorted(DOC_COMMANDS))
    print(f"docs-check: ok ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
