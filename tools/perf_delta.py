#!/usr/bin/env python
"""Compare two ``BENCH_*.json`` perf trajectories; fail on regression.

``make fig8-smoke`` (and any ad-hoc A/B of two sweep runs) needs a
file-to-file comparison rather than the in-process gate ``python -m
repro sweep --gate`` applies: the fresh trajectory is written first,
then held against the committed one, so the diff survives as two
artifacts that can be inspected or plotted after the verdict.

Cells are matched by configuration (app, model, nodes, ways, freq,
preset, flags).  Timings are CPU seconds (``elapsed_s``); when both
files carry a ``reference_s`` box-speed calibration, the fresh side is
normalized by ``max(1, fresh_ref / base_ref)`` — the same
slowness-excusing bias as the sweep gate, so a loaded box never
manufactures a regression and a fast box never hides one.  A matched
cell fails when its normalized time exceeds the baseline's by more
than ``--limit`` (default 1.25 = the >25% regression rule) plus a
20 ms absolute slack for sub-0.1s cells.

Exit status: 0 clean, 1 regression(s) or unusable input.

Usage::

    python tools/perf_delta.py BASELINE.json FRESH.json [--limit 1.25]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Tuple

#: Ratio above which a matched cell is a regression (>25% slower).
DEFAULT_LIMIT = 1.25

#: Absolute slack (seconds) absorbing timer noise on sub-0.1s cells.
SLACK_S = 0.02


def _gate_key(row: Dict[str, object]) -> Tuple:
    flags = row.get("flags") or {}
    return (
        row.get("app"), row.get("model"), row.get("n_nodes"),
        row.get("ways"), row.get("freq_ghz"), row.get("preset"),
        tuple(sorted(flags.items())),
    )


def _label(key: Tuple) -> str:
    app, model, n, w, freq, preset, flags = key
    extra = "".join(f" {k}={v}" for k, v in flags)
    return f"{app}/{model} n={n} w={w} {freq:g}GHz {preset}{extra}"


def _timed_cells(doc: Dict[str, object]) -> Dict[Tuple, float]:
    """Fresh-timed ok rows only: cached rows carry no usable timing."""
    out: Dict[Tuple, float] = {}
    for row in doc.get("cells", []):
        if row.get("status") != "ok" or row.get("cached"):
            continue
        elapsed = float(row.get("elapsed_s") or 0.0)
        if elapsed > 0:
            out[_gate_key(row)] = elapsed
    return out


def compare(
    base_doc: Dict[str, object],
    fresh_doc: Dict[str, object],
    limit: float = DEFAULT_LIMIT,
) -> Tuple[int, list]:
    """Return ``(n_failures, report_lines)`` for two BENCH documents."""
    base = _timed_cells(base_doc)
    fresh = _timed_cells(fresh_doc)
    scale = 1.0
    base_ref = float(base_doc.get("reference_s") or 0.0)
    fresh_ref = float(fresh_doc.get("reference_s") or 0.0)
    if base_ref > 0 and fresh_ref > 0:
        scale = max(1.0, fresh_ref / base_ref)
    lines = []
    if scale != 1.0:
        lines.append(
            f"perf-delta: box speed {scale:.2f}x baseline "
            f"(calibration {fresh_ref:.3f}s vs {base_ref:.3f}s); "
            f"comparing normalized timings"
        )
    failures = 0
    for key, base_s in sorted(base.items(), key=lambda kv: _label(kv[0])):
        fresh_s = fresh.get(key)
        if fresh_s is None:
            lines.append(f"perf-delta: {_label(key)}: MISSING in fresh run")
            continue
        ratio = fresh_s / (base_s * scale)
        failed = fresh_s > base_s * scale * limit + SLACK_S
        if failed:
            failures += 1
        lines.append(
            f"perf-delta: {_label(key)}: {'FAIL' if failed else 'ok'} "
            f"({fresh_s:.3f}s vs {base_s:.3f}s baseline, {ratio:.2f}x, "
            f"limit {limit:.2f}x)"
        )
    for key in sorted(set(fresh) - set(base), key=_label):
        lines.append(
            f"perf-delta: {_label(key)}: NEW ({fresh[key]:.3f}s, "
            f"no baseline)"
        )
    return failures, lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when a fresh BENCH_*.json regresses >25% "
                    "against a committed one"
    )
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("fresh", help="freshly written BENCH_*.json")
    parser.add_argument("--limit", type=float, default=DEFAULT_LIMIT,
                        help="failure ratio (default %(default)s)")
    args = parser.parse_args(argv)

    docs = []
    for path in (args.baseline, args.fresh):
        try:
            docs.append(json.loads(Path(path).read_text()))
        except (OSError, ValueError) as exc:
            print(f"perf-delta: cannot read {path}: {exc}", file=sys.stderr)
            return 1
    failures, lines = compare(docs[0], docs[1], limit=args.limit)
    for line in lines:
        print(line)
    if failures:
        print(f"\nperf-delta: {failures} cell(s) regressed beyond "
              f"{args.limit:.2f}x")
        return 1
    print("\nperf-delta: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
